(* Function-granularity caching: whole-function units, PLT-style call
   indirection, and the degradation rule. Block and function
   granularity must be observationally equivalent — same outputs, same
   final data segment — for every workload, every eviction policy, and
   under random mid-run eviction/flush schedules; a function too large
   to cache degrades to block granularity for that function instead of
   aborting; and the PR's satellite bugfixes (typed bound-loop
   invariant, strict percentile with an "n/a" fleet rendering, traced
   fleet stall samples) each get a regression test. *)

let reg = Isa.Reg.r

let prog_sum n =
  let b = Isa.Builder.create "sum" in
  Isa.Builder.li b (reg 1) n;
  Isa.Builder.li b (reg 2) 0;
  let top = Isa.Builder.label b in
  Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 2, reg 1));
  Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 1, reg 1, -1));
  Isa.Builder.br b Ne (reg 1) Isa.Reg.zero top;
  Isa.Builder.ins b (Isa.Instr.Out (reg 2));
  Isa.Builder.ins b Isa.Instr.Halt;
  Isa.Builder.build b

let prog_fib n =
  let b = Isa.Builder.create "fib" in
  let fib = Isa.Builder.new_label b in
  let base = Isa.Builder.new_label b in
  let main = Isa.Builder.new_label b in
  Isa.Builder.entry b main;
  Isa.Builder.func b "fib" fib (fun () ->
      Isa.Builder.li b (reg 3) 2;
      Isa.Builder.br b Lt (reg 1) (reg 3) base;
      Isa.Builder.ins b (Isa.Instr.Alui (Add, Isa.Reg.sp, Isa.Reg.sp, -12));
      Isa.Builder.ins b (Isa.Instr.St (Isa.Reg.ra, Isa.Reg.sp, 0));
      Isa.Builder.ins b (Isa.Instr.St (reg 1, Isa.Reg.sp, 4));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 1, reg 1, -1));
      Isa.Builder.jal b fib;
      Isa.Builder.ins b (Isa.Instr.St (reg 2, Isa.Reg.sp, 8));
      Isa.Builder.ins b (Isa.Instr.Ld (reg 1, Isa.Reg.sp, 4));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 1, reg 1, -2));
      Isa.Builder.jal b fib;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 3, Isa.Reg.sp, 8));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 2, reg 3));
      Isa.Builder.ins b (Isa.Instr.Ld (Isa.Reg.ra, Isa.Reg.sp, 0));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, Isa.Reg.sp, Isa.Reg.sp, 12));
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra);
      Isa.Builder.here b base;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 1, Isa.Reg.zero));
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));
  Isa.Builder.func b "main" main (fun () ->
      Isa.Builder.li b (reg 1) n;
      Isa.Builder.jal b fib;
      Isa.Builder.ins b (Isa.Instr.Out (reg 2));
      Isa.Builder.ins b Isa.Instr.Halt);
  Isa.Builder.build b

(* One function of [blocks] small basic blocks (always-taken branches
   split the straight line), so the whole-function unit is large while
   every individual block stays tiny — the shape the degradation rule
   exists for. *)
let prog_bigfn ~blocks =
  let b = Isa.Builder.create "bigfn" in
  let f = Isa.Builder.new_label b in
  let main = Isa.Builder.new_label b in
  Isa.Builder.entry b main;
  Isa.Builder.func b "bigfn" f (fun () ->
      Isa.Builder.li b (reg 2) 0;
      for _ = 1 to blocks do
        let next = Isa.Builder.new_label b in
        for _ = 1 to 4 do
          Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 2, reg 2, 1))
        done;
        Isa.Builder.br b Eq Isa.Reg.zero Isa.Reg.zero next;
        Isa.Builder.here b next
      done;
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));
  Isa.Builder.func b "main" main (fun () ->
      Isa.Builder.jal b f;
      Isa.Builder.ins b (Isa.Instr.Out (reg 2));
      Isa.Builder.ins b Isa.Instr.Halt);
  Isa.Builder.build b

let gran_cfg ?(tcache_bytes = 8192) ?(eviction = Softcache.Config.Fifo)
    ?(granularity = Softcache.Config.Function) () =
  Softcache.Config.make ~tcache_bytes
    ~chunking:Softcache.Config.Basic_block ~eviction ~granularity ()

(* ------------------------------------------------------------------ *)
(* PLT basics: calls resolve through slots, slots get patched, outputs
   match native *)

let test_function_mode_basic () =
  let img = prog_fib 12 in
  let native = Softcache.Runner.native img in
  let ctrl = Softcache.Controller.create (gran_cfg ()) img in
  let _ = Check.Audit.install ctrl in
  let outcome = Softcache.Controller.run ctrl in
  Alcotest.(check bool) "halts" true (outcome = Machine.Cpu.Halted);
  Alcotest.(check (list int)) "outputs" native.outputs
    (Machine.Cpu.outputs ctrl.cpu);
  Alcotest.(check bool) "PLT slots allocated" true (ctrl.stats.plt_slots > 0);
  Alcotest.(check bool) "slots specialised" true (ctrl.stats.plt_patches > 0);
  Alcotest.(check bool) "slot patches are patches" true
    (ctrl.stats.patches >= ctrl.stats.plt_patches);
  Alcotest.(check int) "nothing degraded" 0 ctrl.stats.gran_degraded;
  Check.Audit.check_exn ctrl

(* a flush re-traps every slot; re-entry re-specialises lazily *)
let test_flush_retraps_slots () =
  let img = prog_fib 10 in
  let native = Softcache.Runner.native img in
  let ctrl = Softcache.Controller.create (gran_cfg ()) img in
  let _ = Check.Audit.install ctrl in
  Alcotest.(check bool) "halts" true
    (Softcache.Controller.run ctrl = Machine.Cpu.Halted);
  let patches_before = ctrl.stats.plt_patches in
  Softcache.Controller.flush ctrl;
  Check.Audit.check_exn ctrl;
  (* drive the program again from entry: every call re-enters through a
     trapping slot and re-specialises it *)
  let b = Softcache.Controller.ensure_resident ctrl img.Isa.Image.entry in
  ctrl.cpu.pc <- b.paddr;
  ctrl.cpu.halted <- false;
  Alcotest.(check bool) "re-runs to halt" true
    (Softcache.Controller.run ctrl = Machine.Cpu.Halted);
  Alcotest.(check bool) "slots re-specialised after flush" true
    (ctrl.stats.plt_patches > patches_before);
  Alcotest.(check (list int)) "outputs repeat" (native.outputs @ native.outputs)
    (Machine.Cpu.outputs ctrl.cpu);
  Check.Audit.check_exn ctrl

(* ------------------------------------------------------------------ *)
(* Degradation: a function bigger than the tcache must fall back to
   block granularity for that function, not abort *)

let test_oversized_function_degrades () =
  let img = prog_bigfn ~blocks:60 in
  let native = Softcache.Runner.native img in
  let ctrl =
    Softcache.Controller.create (gran_cfg ~tcache_bytes:1024 ()) img
  in
  let _ = Check.Audit.install ctrl in
  let outcome = Softcache.Controller.run ctrl in
  Alcotest.(check bool) "halts (no Chunk_too_large abort)" true
    (outcome = Machine.Cpu.Halted);
  Alcotest.(check (list int)) "outputs" native.outputs
    (Machine.Cpu.outputs ctrl.cpu);
  Alcotest.(check bool) "degradation recorded" true
    (ctrl.stats.gran_degraded > 0);
  Alcotest.(check bool) "body ran as multiple block units" true
    (ctrl.stats.translations > 2);
  Check.Audit.check_exn ctrl

(* the degraded-extent decision is sticky: re-requesting the entry after
   a flush must not re-attempt the whole-function unit *)
let test_degradation_sticky () =
  let img = prog_bigfn ~blocks:60 in
  let ctrl =
    Softcache.Controller.create (gran_cfg ~tcache_bytes:1024 ()) img
  in
  Alcotest.(check bool) "halts" true
    (Softcache.Controller.run ctrl = Machine.Cpu.Halted);
  let degraded = ctrl.stats.gran_degraded in
  Alcotest.(check bool) "degraded" true (degraded > 0);
  Softcache.Controller.flush ctrl;
  let b = Softcache.Controller.ensure_resident ctrl img.Isa.Image.entry in
  ctrl.cpu.pc <- b.paddr;
  ctrl.cpu.halted <- false;
  Alcotest.(check bool) "re-runs" true
    (Softcache.Controller.run ctrl = Machine.Cpu.Halted);
  Alcotest.(check int) "no second degradation of the same function"
    degraded ctrl.stats.gran_degraded

(* ------------------------------------------------------------------ *)
(* Satellite: the bound loop raises a typed invariant, not assert false *)

let test_bound_loop_typed_invariant () =
  let ctrl =
    Softcache.Controller.create
      (gran_cfg ~granularity:Softcache.Config.Block ())
      (prog_fib 12)
  in
  ctrl.chaos_evict_bound <- true;
  match Softcache.Controller.run ctrl with
  | _ -> Alcotest.fail "bound-target eviction went unnoticed"
  | exception Softcache.Controller.Internal_invariant_broken { chunk; detail }
    ->
    Alcotest.(check bool) "carries the chunk vaddr" true (chunk >= 0x1000);
    Alcotest.(check bool) "names the bound loop" true
      (String.length detail > 0)

(* ------------------------------------------------------------------ *)
(* Satellites: Report.percentile stays strict; the fleet summary
   renders n/a instead of masking an empty stall population *)

let test_percentile_strict () =
  Alcotest.check_raises "empty sample list"
    (Invalid_argument "Report.percentile: empty sample list") (fun () ->
      ignore (Report.percentile 50.0 []));
  Alcotest.(check (float 0.0)) "singleton" 7.0 (Report.percentile 99.0 [ 7.0 ])

let test_fleet_empty_stalls_render_na () =
  let img = prog_sum 10 in
  let net = Netmodel.local () in
  let mk_cfg _ = Softcache.Config.make ~tcache_bytes:4096 ~net () in
  let fl =
    Fleet.create ~config:(Fleet.config ~clients:2 ()) ~net mk_cfg [| img |]
  in
  (* before any instruction runs, no session has a stall sample — the
     summary must say so rather than fabricate a 0-cycle percentile *)
  List.iter
    (fun (c : Fleet.client_stats) ->
      Alcotest.(check bool) "p50 is None" true (c.c_stall_p50 = None);
      Alcotest.(check bool) "p99 is None" true (c.c_stall_p99 = None))
    (Fleet.summary fl).f_per_client;
  let fields = Fleet.summary_fields fl in
  Alcotest.(check string) "p50 rendered" "n/a;n/a"
    (List.assoc "stall_p50" fields);
  Alcotest.(check string) "p99 rendered" "n/a;n/a"
    (List.assoc "stall_p99" fields);
  (* after a run every session fetched at least its entry chunk, so the
     percentiles come back as numbers *)
  Fleet.run ~fuel:200_000 fl;
  List.iter
    (fun (c : Fleet.client_stats) ->
      Alcotest.(check bool) "p50 present after run" true
        (c.c_stall_p50 <> None))
    (Fleet.summary fl).f_per_client

(* ------------------------------------------------------------------ *)
(* Satellite: fleet stall samples reach the trace, and both exporters
   still validate against their schemas *)

let test_fl_stall_traced () =
  let img = prog_sum 200 in
  let net = Netmodel.ethernet_10mbps () in
  let mk_cfg _ = Softcache.Config.make ~tcache_bytes:4096 ~net () in
  let fl =
    Fleet.create ~config:(Fleet.config ~clients:2 ()) ~net mk_cfg [| img |]
  in
  let tr = Trace.create () in
  Fleet.attach_tracer fl tr;
  Fleet.run ~fuel:500_000 fl;
  let stall_events =
    List.filter
      (fun (_, e) -> match e with Trace.Fl_stall _ -> true | _ -> false)
      (Trace.events tr)
  in
  Alcotest.(check bool) "Fl_stall events emitted" true (stall_events <> []);
  (* the traced population is exactly the percentile population *)
  let sampled =
    Array.fold_left
      (fun acc s -> acc + List.length (Fleet.stall_samples s))
      0 (Fleet.sessions fl)
  in
  Alcotest.(check int) "one event per stall sample" sampled
    (List.length stall_events);
  (match Trace.Schema.validate_jsonl (Trace.to_jsonl tr) with
  | Ok n -> Alcotest.(check bool) "jsonl events" true (n > 0)
  | Error e -> Alcotest.failf "jsonl schema: %s" e);
  match Trace.Schema.validate_chrome (Trace.to_chrome tr) with
  | Ok n -> Alcotest.(check bool) "chrome events" true (n > 0)
  | Error e -> Alcotest.failf "chrome schema: %s" e

(* ------------------------------------------------------------------ *)
(* The qcheck property: random program x tcache size x eviction policy
   x invalidate/flush schedule — block and function granularity stay
   observationally equivalent (each in data-access lockstep with
   native, then cross-compared), with the auditor's PLT section armed
   on every controller event. *)

let qcheck_cases_executed = ref 0

let schedule_gen =
  QCheck.Gen.(
    pair
      (triple (int_range 0 1) (* program family *)
         (int_range 8 13) (* size parameter *)
         (oneofl [ 1024; 2048; 4096 ]) (* tcache bytes *))
      (pair
         (int_range 0 (List.length Softcache.Config.eviction_table - 1))
         (list_size (int_range 0 3) (int_range 0 2) (* mid-run ops *))))

let schedule_print =
  QCheck.Print.(pair (triple int int int) (pair int (list int)))

let schedule_prop ((family, n, tcache_bytes), (ev_i, sched)) =
  incr qcheck_cases_executed;
  let img = if family = 0 then prog_sum (20 + (n * 17)) else prog_fib n in
  let eviction = snd (List.nth Softcache.Config.eviction_table ev_i) in
  let native = Softcache.Runner.native img in
  let fuel = (2 * native.retired) + 4096 in
  let hi = 0x1000 + Isa.Image.static_text_bytes img in
  let ops =
    List.map
      (fun op ctrl ->
        match op with
        | 1 -> Softcache.Controller.invalidate ctrl ~lo:0 ~hi
        | 2 -> Softcache.Controller.flush ctrl
        | _ -> ())
      sched
  in
  let mk_cfg () =
    Softcache.Config.make ~tcache_bytes
      ~chunking:Softcache.Config.Basic_block ()
  in
  match
    Check.Lockstep.granularity ~fuel ~ops ~audit:true ~eviction mk_cfg img
  with
  | Check.Lockstep.Modes_equivalent { events; _ } -> events > 0
  | v ->
    QCheck.Test.fail_reportf "granularity schedule property violated: %a"
      Check.Lockstep.pp_modes_verdict v

let test_qcheck_schedules () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:200 ~name:"granularity schedule property"
       (QCheck.make ~print:schedule_print schedule_gen)
       schedule_prop);
  Alcotest.(check bool)
    (Printf.sprintf "qcheck executed %d cases (>= 200)"
       !qcheck_cases_executed)
    true
    (!qcheck_cases_executed >= 200)

(* ------------------------------------------------------------------ *)
(* Registry-wide: every workload x every eviction policy, block and
   function granularity observationally equivalent *)

let test_granularity_registry_all_policies () =
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      let img = e.build () in
      (* fuel sized to the workload so the sweep stays tractable *)
      let native = Softcache.Runner.native ~fuel:12_000_000 img in
      let fuel = (2 * native.retired) + 4096 in
      List.iter
        (fun (ev_name, eviction) ->
          match
            Check.Lockstep.granularity ~fuel ~eviction
              (fun () ->
                Softcache.Config.make ~tcache_bytes:8192
                  ~chunking:Softcache.Config.Basic_block ())
              img
          with
          | Check.Lockstep.Modes_equivalent { modes; events } ->
            Alcotest.(check (list string))
              (Printf.sprintf "%s/%s covers both granularities" e.name
                 ev_name)
              [ "block"; "function" ] modes;
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s compared something" e.name ev_name)
              true (events > 0)
          | v ->
            Alcotest.failf "%s/%s: %a" e.name ev_name
              Check.Lockstep.pp_modes_verdict v)
        Softcache.Config.eviction_table)
    Workloads.Registry.all

let () =
  Alcotest.run "gran"
    [
      ( "plt",
        [
          Alcotest.test_case "calls resolve through patched slots" `Quick
            test_function_mode_basic;
          Alcotest.test_case "flush re-traps, re-entry re-specialises" `Quick
            test_flush_retraps_slots;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "oversized function degrades to blocks" `Quick
            test_oversized_function_degrades;
          Alcotest.test_case "degradation is sticky across flushes" `Quick
            test_degradation_sticky;
        ] );
      ( "satellites",
        [
          Alcotest.test_case "bound loop raises typed invariant" `Quick
            test_bound_loop_typed_invariant;
          Alcotest.test_case "percentile stays strict" `Quick
            test_percentile_strict;
          Alcotest.test_case "fleet renders n/a for empty stalls" `Quick
            test_fleet_empty_stalls_render_na;
          Alcotest.test_case "fleet stalls reach the trace" `Quick
            test_fl_stall_traced;
        ] );
      ( "property",
        [
          Alcotest.test_case "random schedules, 200 cases" `Slow
            test_qcheck_schedules;
        ] );
      ( "lockstep",
        [
          Alcotest.test_case "registry x policy equivalence" `Slow
            test_granularity_registry_all_policies;
        ] );
    ]
