(* Unit and property tests for the ERISC ISA: registers, encoding,
   images, the builder DSL and the textual assembler. *)

let reg n = Isa.Reg.r n

(* ------------------------------------------------------------------ *)
(* Generators *)

let gen_reg = QCheck.Gen.(map Isa.Reg.r (int_bound 31))
let gen_imm16 = QCheck.Gen.(map (fun v -> v - 32768) (int_bound 65535))
let gen_uimm16 = QCheck.Gen.int_bound 0xFFFF
let gen_jtarget = QCheck.Gen.(map (fun v -> v * 4) (int_bound 0xFFFFF))
let gen_trapidx = QCheck.Gen.int_bound ((1 lsl 26) - 1)

let gen_aluop =
  QCheck.Gen.oneofl
    [
      Isa.Instr.Add; Sub; Mul; Div; And; Or; Xor; Sll; Srl; Sra; Slt; Sltu;
    ]

let gen_cond = QCheck.Gen.oneofl [ Isa.Instr.Eq; Ne; Lt; Ge; Ltu; Geu ]

let gen_instr : Isa.Instr.t QCheck.Gen.t =
  let open QCheck.Gen in
  let open Isa.Instr in
  oneof
    [
      map4 (fun op a b c -> Alu (op, a, b, c)) gen_aluop gen_reg gen_reg gen_reg;
      map4 (fun op a b i -> Alui (op, a, b, i)) gen_aluop gen_reg gen_reg gen_imm16;
      map2 (fun r i -> Lui (r, i)) gen_reg gen_uimm16;
      map3 (fun a b i -> Ld (a, b, i)) gen_reg gen_reg gen_imm16;
      map3 (fun a b i -> St (a, b, i)) gen_reg gen_reg gen_imm16;
      map3 (fun a b i -> Ldb (a, b, i)) gen_reg gen_reg gen_imm16;
      map3 (fun a b i -> Stb (a, b, i)) gen_reg gen_reg gen_imm16;
      map4 (fun c a b o -> Br (c, a, b, o)) gen_cond gen_reg gen_reg gen_imm16;
      map (fun t -> Jmp t) gen_jtarget;
      map (fun t -> Jal t) gen_jtarget;
      map (fun r -> Jr r) gen_reg;
      map2 (fun a b -> Jalr (a, b)) gen_reg gen_reg;
      map (fun k -> Trap k) gen_trapidx;
      map (fun r -> Out r) gen_reg;
      return Nop;
      return Halt;
    ]

let arb_instr = QCheck.make ~print:Isa.Instr.to_string gen_instr

(* ------------------------------------------------------------------ *)
(* Encode / decode *)

let test_roundtrip =
  QCheck.Test.make ~count:2000 ~name:"encode/decode roundtrip" arb_instr
    (fun i -> Isa.Encode.decode (Isa.Encode.encode i) = Some i)

let test_canonical =
  QCheck.Test.make ~count:5000 ~name:"decode gives canonical encodings"
    QCheck.(make Gen.(int_bound 0xFFFFFFFF))
    (fun w ->
      match Isa.Encode.decode w with
      | None -> true
      | Some i -> Isa.Encode.encode i = w)

let test_predecode_identical =
  (* any word the pure decoder accepts must come out of the memory
     decode cache bit-identically, on the fill path and again on the
     hit path; any word it rejects must raise [Undecodable] carrying
     that word and install nothing *)
  QCheck.Test.make ~count:2000
    ~name:"decode cache predecodes every decodable word identically"
    QCheck.(make Gen.(int_bound 0xFFFFFFFF))
    (fun w ->
      let mem = Machine.Memory.create 64 in
      Machine.Memory.write32 mem 0 w;
      match Isa.Encode.decode w with
      | Some i ->
        Machine.Memory.fetch_decoded mem 0 = i
        && Machine.Memory.fetch_decoded mem 0 = i
      | None -> (
        match Machine.Memory.fetch_decoded mem 0 with
        | exception Machine.Memory.Undecodable w' ->
          w' = w && Machine.Memory.decode_peek mem 0 = None
        | _ -> false))

let test_encode_errors () =
  let open Isa.Instr in
  List.iter
    (fun i ->
      match Isa.Encode.encode i with
      | exception Isa.Encode.Encode_error _ -> ()
      | w -> Alcotest.failf "expected Encode_error, got 0x%08x" w)
    [
      Alui (Add, reg 1, reg 2, 40000);
      Alui (Add, reg 1, reg 2, -40000);
      Lui (reg 1, -1);
      Lui (reg 1, 0x10000);
      Br (Eq, reg 1, reg 2, 32768);
      Jmp 3 (* unaligned *);
      Jmp (4 * (1 lsl 26)) (* out of range *);
      Trap (-1);
      Trap (1 lsl 26);
    ]

let test_decode_garbage () =
  (* opcodes 32..63 are unassigned *)
  for op = 32 to 63 do
    Alcotest.(check (option reject))
      "unassigned opcode" None
      (Isa.Encode.decode (op lsl 26))
  done;
  (* R-type with bad funct *)
  Alcotest.(check bool)
    "bad funct" true
    (Isa.Encode.decode 12 = None);
  (* Halt with nonzero payload *)
  Alcotest.(check bool)
    "halt payload" true
    (Isa.Encode.decode ((29 lsl 26) lor 5) = None)

let test_pp () =
  let open Isa.Instr in
  let check s i = Alcotest.(check string) s s (to_string i) in
  check "add r1, r2, r3" (Alu (Add, reg 1, reg 2, reg 3));
  check "addi r1, r2, -5" (Alui (Add, reg 1, reg 2, -5));
  check "ld r4, 8(sp)" (Ld (reg 4, Isa.Reg.sp, 8));
  check "beq r1, zero, +3" (Br (Eq, reg 1, Isa.Reg.zero, 3));
  check "jr ra" (Jr Isa.Reg.ra);
  check "halt" Halt

(* ------------------------------------------------------------------ *)
(* Registers *)

let test_reg_basics () =
  Alcotest.(check int) "zero" 0 (Isa.Reg.to_int Isa.Reg.zero);
  Alcotest.(check int) "sp" 30 (Isa.Reg.to_int Isa.Reg.sp);
  Alcotest.(check int) "ra" 31 (Isa.Reg.to_int Isa.Reg.ra);
  Alcotest.(check bool) "of_string r7" true (Isa.Reg.of_string "r7" = Some (reg 7));
  Alcotest.(check bool) "of_string sp" true (Isa.Reg.of_string "sp" = Some Isa.Reg.sp);
  Alcotest.(check bool) "of_string bad" true (Isa.Reg.of_string "r32" = None);
  Alcotest.(check bool) "of_string junk" true (Isa.Reg.of_string "x1" = None);
  (match Isa.Reg.r 32 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "r 32 should raise");
  match Isa.Reg.r (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "r -1 should raise"

(* ------------------------------------------------------------------ *)
(* Builder *)

let test_builder_loop () =
  let b = Isa.Builder.create "loop" in
  let open Isa.Instr in
  Isa.Builder.li b (reg 1) 10;
  let top = Isa.Builder.label b in
  Isa.Builder.ins b (Alui (Add, reg 1, reg 1, -1));
  Isa.Builder.br b Ne (reg 1) Isa.Reg.zero top;
  Isa.Builder.ins b Halt;
  let img = Isa.Builder.build b in
  Alcotest.(check int) "code size" 16 (Isa.Image.static_text_bytes img);
  (* the branch is at word 2, the label at word 1: offset -1 *)
  Alcotest.(check bool)
    "branch resolved" true
    (Isa.Image.fetch img (img.code_base + 8)
    = Br (Ne, reg 1, Isa.Reg.zero, -1))

let test_builder_forward_label () =
  let b = Isa.Builder.create "fwd" in
  let skip = Isa.Builder.new_label b in
  Isa.Builder.jmp b skip;
  Isa.Builder.ins b Isa.Instr.Nop;
  Isa.Builder.here b skip;
  Isa.Builder.ins b Isa.Instr.Halt;
  let img = Isa.Builder.build b in
  Alcotest.(check bool)
    "jmp to +2 words" true
    (Isa.Image.fetch img img.code_base = Isa.Instr.Jmp (img.code_base + 8))

let test_builder_unplaced_label () =
  let b = Isa.Builder.create "bad" in
  let l = Isa.Builder.new_label b in
  Isa.Builder.jmp b l;
  match Isa.Builder.build b with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unplaced label should fail"

let test_builder_func_symbols () =
  let b = Isa.Builder.create "syms" in
  let f = Isa.Builder.new_label b in
  let g = Isa.Builder.new_label b in
  Isa.Builder.func b "f" f (fun () ->
      Isa.Builder.ins b Isa.Instr.Nop;
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));
  Isa.Builder.func b "g" g (fun () -> Isa.Builder.ins b Isa.Instr.Halt);
  let img = Isa.Builder.build b in
  let f_sym = Option.get (Isa.Image.find_symbol img "f") in
  let g_sym = Option.get (Isa.Image.find_symbol img "g") in
  Alcotest.(check int) "f size" 8 f_sym.sym_size;
  Alcotest.(check int) "g addr" (f_sym.sym_addr + 8) g_sym.sym_addr;
  Alcotest.(check bool)
    "symbol_at finds f" true
    (Isa.Image.symbol_at img (f_sym.sym_addr + 4) = Some f_sym);
  Alcotest.(check bool)
    "symbol_at misses past end" true
    (Isa.Image.symbol_at img (g_sym.sym_addr + g_sym.sym_size) = None)

let test_builder_li_widths () =
  let b = Isa.Builder.create "li" in
  Isa.Builder.li b (reg 1) 5;          (* 1 word *)
  Isa.Builder.li b (reg 2) 0x12345678; (* 2 words *)
  Isa.Builder.li b (reg 3) 0x10000;    (* 1 word: lui only *)
  Isa.Builder.li b (reg 4) (-7);       (* 1 word *)
  Isa.Builder.ins b Isa.Instr.Halt;
  let img = Isa.Builder.build b in
  Alcotest.(check int) "emitted words" (6 * 4) (Isa.Image.static_text_bytes img)

let test_builder_data () =
  let b = Isa.Builder.create "data" in
  let a1 = Isa.Builder.word b 42 in
  let a2 = Isa.Builder.words b [| 1; 2; 3 |] in
  let a3 = Isa.Builder.space b 10 in
  let a4 = Isa.Builder.word b 7 in
  Isa.Builder.ins b Isa.Instr.Halt;
  let img = Isa.Builder.build b in
  Alcotest.(check int) "first word addr" img.data_base a1;
  Alcotest.(check int) "array follows" (a1 + 4) a2;
  Alcotest.(check int) "space follows" (a2 + 12) a3;
  Alcotest.(check int) "word after space is aligned" (a3 + 12) a4;
  Alcotest.(check int32) "contents" 42l (Bytes.get_int32_le img.data 0)

(* ------------------------------------------------------------------ *)
(* Image validation *)

let test_image_validation () =
  let code = [| Isa.Encode.encode Isa.Instr.Halt |] in
  let mk ?(entry = 0x1000) ?(code_base = 0x1000) ?(symbols = []) () =
    Isa.Image.make ~name:"t" ~code_base ~code ~data_base:0x100000
      ~data:Bytes.empty ~entry ~symbols
  in
  (match mk ~entry:0x2000 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "entry outside code");
  (match mk ~code_base:0x1002 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unaligned base");
  (match
     mk
       ~symbols:
         [
           { sym_name = "a"; sym_addr = 0x1000; sym_size = 4 };
           { sym_name = "b"; sym_addr = 0x1002; sym_size = 4 };
         ]
       ()
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "overlapping symbols");
  let img = mk () in
  Alcotest.(check bool) "contains entry" true (Isa.Image.contains_code img 0x1000);
  Alcotest.(check bool) "excludes end" false (Isa.Image.contains_code img 0x1004)

(* ------------------------------------------------------------------ *)
(* Assembler *)

let test_asm_basic () =
  let src =
    {|
      ; sum 1..5
      .entry main
      .func main
      main:
          li   r1, 5
          li   r2, 0
      loop: add  r2, r2, r1
          addi r1, r1, -1
          bne  r1, zero, loop
          out  r2
          halt
      .endfunc
    |}
  in
  let img = Isa.Assembler.assemble_exn src in
  Alcotest.(check int) "entry" img.code_base img.entry;
  Alcotest.(check bool)
    "has main symbol" true
    (Isa.Image.find_symbol img "main" <> None);
  Alcotest.(check int) "7 words" 28 (Isa.Image.static_text_bytes img)

let test_asm_data_labels () =
  let src =
    {|
      .data
      tbl:  .word 10, 20, 30
      buf:  .space 8
      bs:   .byte 1, 2, 3
      .text
      main: la r1, tbl
            ld r2, 4(r1)
            out r2
            halt
    |}
  in
  let img = Isa.Assembler.assemble_exn src in
  Alcotest.(check int32) "tbl[1]" 20l (Bytes.get_int32_le img.data 4);
  Alcotest.(check int) "byte data" 2 (Char.code (Bytes.get img.data 21))

let test_asm_mnemonic_coverage () =
  let src =
    {|
      main:
        add r1, r2, r3
        subi r1, r1, 1
        mul r4, r1, r1
        divi r4, r4, 2
        andi r5, r4, 255
        ori r5, r5, 1
        xor r6, r5, r5
        slli r7, r5, 2
        srl r8, r7, r5
        sra r9, r7, r5
        slt r10, r8, r9
        sltui r11, r8, 100
        lui r12, 0x1234
        ldb r13, 0(r12)
        stb r13, 1(r12)
        mov r14, r13
        jalr r15, r14
        jr r14
        beq r1, r2, +2
        bltu r1, r2, -1
        trap 7
        nop
        ret
        halt
    |}
  in
  match Isa.Assembler.assemble src with
  | Ok img -> Alcotest.(check int) "24 words" (24 * 4) (Isa.Image.static_text_bytes img)
  | Error e -> Alcotest.fail e

(* tiny substring helper (no external dependency) *)
let astring_contains s frag =
  let n = String.length s and m = String.length frag in
  let rec go i = i + m <= n && (String.sub s i m = frag || go (i + 1)) in
  m = 0 || go 0

let test_asm_error_cases () =
  let expect_err src frag =
    match Isa.Assembler.assemble src with
    | Ok _ -> Alcotest.failf "expected failure mentioning %s" frag
    | Error e ->
      if not (astring_contains e frag) then
        Alcotest.failf "error %S does not mention %S" e frag
  in
  expect_err "main: frob r1, r2" "unknown mnemonic";
  expect_err "main: jmp nowhere\nhalt" "undefined label";
  expect_err "a: nop\na: halt" "duplicate label";
  expect_err ".data\nx: .word 1\n.text\nmain: jmp x\nhalt" "data label";
  expect_err "main: addi r1, r2, 100000\nhalt" "out of range";
  expect_err ".entry nope\nmain: halt" "undefined label";
  expect_err ".func f\nnop" ".func not closed";
  expect_err "" "no code"

let test_asm_pp_roundtrip =
  (* pp output of straight-line instructions reassembles to the same
     encodings *)
  let gen_plain =
    QCheck.Gen.(
      oneof
        [
          map4 (fun op a b c -> Isa.Instr.Alu (op, a, b, c)) gen_aluop gen_reg
            gen_reg gen_reg;
          map2 (fun r i -> Isa.Instr.Lui (r, i)) gen_reg gen_uimm16;
          map3 (fun a b i -> Isa.Instr.Ld (a, b, i)) gen_reg gen_reg gen_imm16;
          map3 (fun a b i -> Isa.Instr.St (a, b, i)) gen_reg gen_reg gen_imm16;
          map (fun r -> Isa.Instr.Out r) gen_reg;
          return Isa.Instr.Nop;
        ])
  in
  QCheck.Test.make ~count:300 ~name:"assembler accepts pretty-printed instrs"
    QCheck.(make ~print:(fun l -> String.concat "\n" (List.map Isa.Instr.to_string l))
              Gen.(list_size (int_range 1 20) gen_plain))
    (fun instrs ->
      let src =
        String.concat "\n" (List.map Isa.Instr.to_string instrs) ^ "\nhalt"
      in
      match Isa.Assembler.assemble src with
      | Error _ -> false
      | Ok img ->
        let expect =
          Array.of_list
            (List.map Isa.Encode.encode instrs @ [ Isa.Encode.encode Halt ])
        in
        img.code = expect)

let test_disasm_word () =
  let w = Isa.Encode.encode (Isa.Instr.Alu (Add, reg 1, reg 2, reg 3)) in
  Alcotest.(check string) "mnemonic" "add r1, r2, r3" (Isa.Disasm.word w);
  Alcotest.(check string) "undecodable" ".word 0xfc000000"
    (Isa.Disasm.word (63 lsl 26));
  (* branch targets annotated when the address is known *)
  let b = Isa.Encode.encode (Isa.Instr.Br (Eq, reg 1, reg 2, 3)) in
  Alcotest.(check bool) "target annotation" true
    (astring_contains (Isa.Disasm.word ~addr:0x1000 b) "0x100c")

let test_disasm_image () =
  let b = Isa.Builder.create "d" in
  let f = Isa.Builder.new_label b in
  Isa.Builder.func b "flagship" f (fun () ->
      Isa.Builder.ins b Isa.Instr.Nop;
      Isa.Builder.ins b Isa.Instr.Halt);
  let listing = Isa.Disasm.image (Isa.Builder.build b) in
  Alcotest.(check bool) "symbol header" true
    (astring_contains listing "<flagship>:");
  Alcotest.(check bool) "has nop" true (astring_contains listing "nop");
  Alcotest.(check bool) "has addresses" true
    (astring_contains listing "00001000:")

(* The shipped assembly example must assemble and run identically
   natively and under the SoftCache. *)
let test_asm_example_file () =
  let src = In_channel.with_open_text "../examples/fir.s" In_channel.input_all in
  match Isa.Assembler.assemble ~name:"fir.s" src with
  | Error e -> Alcotest.fail e
  | Ok img ->
    let native = Softcache.Runner.native img in
    Alcotest.(check bool) "halts" true (native.outcome = Machine.Cpu.Halted);
    Alcotest.(check int) "two outputs" 2 (List.length native.outputs);
    let cached, _ =
      Softcache.Runner.cached
        (Softcache.Config.make ~tcache_bytes:512 ())
        img
    in
    Alcotest.(check (list int)) "cached matches" native.outputs cached.outputs

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "isa"
    [
      ( "encode",
        [
          qt test_roundtrip;
          qt test_canonical;
          qt test_predecode_identical;
          Alcotest.test_case "encode errors" `Quick test_encode_errors;
          Alcotest.test_case "decode garbage" `Quick test_decode_garbage;
          Alcotest.test_case "pretty printing" `Quick test_pp;
        ] );
      ("reg", [ Alcotest.test_case "basics" `Quick test_reg_basics ]);
      ( "builder",
        [
          Alcotest.test_case "loop" `Quick test_builder_loop;
          Alcotest.test_case "forward label" `Quick test_builder_forward_label;
          Alcotest.test_case "unplaced label" `Quick test_builder_unplaced_label;
          Alcotest.test_case "func symbols" `Quick test_builder_func_symbols;
          Alcotest.test_case "li widths" `Quick test_builder_li_widths;
          Alcotest.test_case "data" `Quick test_builder_data;
        ] );
      ("image", [ Alcotest.test_case "validation" `Quick test_image_validation ]);
      ( "assembler",
        [
          Alcotest.test_case "basic program" `Quick test_asm_basic;
          Alcotest.test_case "data labels" `Quick test_asm_data_labels;
          Alcotest.test_case "mnemonic coverage" `Quick test_asm_mnemonic_coverage;
          Alcotest.test_case "error cases" `Quick test_asm_error_cases;
          Alcotest.test_case "fir.s example" `Quick test_asm_example_file;
          Alcotest.test_case "disasm word" `Quick test_disasm_word;
          Alcotest.test_case "disasm image" `Quick test_disasm_image;
          qt test_asm_pp_roundtrip;
        ] );
    ]
