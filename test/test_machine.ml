(* Tests for the ERISC interpreter: memory, ALU semantics, control
   flow, faults, costs and hooks. *)

let reg = Isa.Reg.r

(* Build and run a straight-line program; return the CPU. *)
let run_prog ?cost ?(fuel = 100_000) instrs =
  let b = Isa.Builder.create "t" in
  List.iter (Isa.Builder.ins b) instrs;
  let img = Isa.Builder.build b in
  let cpu = Machine.Cpu.of_image ?cost img in
  let outcome = Machine.Cpu.run ~fuel cpu in
  (cpu, outcome)

let check_out name expected instrs =
  let cpu, outcome = run_prog instrs in
  Alcotest.(check bool) (name ^ " halted") true (outcome = Machine.Cpu.Halted);
  Alcotest.(check (list int)) name expected (Machine.Cpu.outputs cpu)

(* ------------------------------------------------------------------ *)
(* Memory *)

let test_memory_rw () =
  let m = Machine.Memory.create 64 in
  Machine.Memory.write32 m 0 0x12345678;
  Alcotest.(check int) "read32" 0x12345678 (Machine.Memory.read32 m 0);
  Alcotest.(check int) "little-endian byte 0" 0x78 (Machine.Memory.read8 m 0);
  Alcotest.(check int) "little-endian byte 3" 0x12 (Machine.Memory.read8 m 3);
  Machine.Memory.write32 m 4 (-1);
  Alcotest.(check int) "negative roundtrip" (-1) (Machine.Memory.read32 m 4);
  Machine.Memory.write8 m 8 0x1FF;
  Alcotest.(check int) "write8 truncates" 0xFF (Machine.Memory.read8 m 8)

let test_memory_faults () =
  let m = Machine.Memory.create 64 in
  (match Machine.Memory.read32 m 62 with
  | exception Machine.Memory.Out_of_bounds _ -> ()
  | _ -> Alcotest.fail "read32 past end");
  (match Machine.Memory.read32 m 2 with
  | exception Machine.Memory.Unaligned _ -> ()
  | _ -> Alcotest.fail "unaligned read32");
  (match Machine.Memory.read8 m (-1) with
  | exception Machine.Memory.Out_of_bounds _ -> ()
  | _ -> Alcotest.fail "negative read8");
  match Machine.Memory.write32 m 64 0 with
  | exception Machine.Memory.Out_of_bounds _ -> ()
  | _ -> Alcotest.fail "write32 past end"

let test_memory_hash () =
  let m = Machine.Memory.create 64 in
  let h0 = Machine.Memory.hash m ~lo:0 ~hi:64 in
  Machine.Memory.write8 m 10 1;
  let h1 = Machine.Memory.hash m ~lo:0 ~hi:64 in
  Alcotest.(check bool) "hash changes" true (h0 <> h1);
  Alcotest.(check int) "hash outside range unchanged" h0
    (Machine.Memory.hash m ~lo:11 ~hi:64 * 0 + h0)

(* ------------------------------------------------------------------ *)
(* ALU semantics *)

let li rd v = Isa.Instr.Alui (Add, rd, Isa.Reg.zero, v)

let test_alu_wraparound () =
  check_out "add wraps to negative"
    [ -2147483648 ]
    [
      Isa.Instr.Lui (reg 1, 0x7FFF);
      Isa.Instr.Alui (Or, reg 1, reg 1, -1) (* 0x7FFFFFFF via zero-extended imm *);
      li (reg 2) 1;
      Isa.Instr.Alu (Add, reg 3, reg 1, reg 2);
      Isa.Instr.Out (reg 3);
      Isa.Instr.Halt;
    ]

let test_alu_bitwise_zero_extends () =
  check_out "ori zero-extends" [ 0xFFFF ]
    [
      li (reg 1) 0;
      Isa.Instr.Alui (Or, reg 1, reg 1, -1);
      Isa.Instr.Out (reg 1);
      Isa.Instr.Halt;
    ]

let test_alu_shifts () =
  check_out "shifts" [ 16; 0x3FFFFFFF; -1 ]
    [
      li (reg 1) 4;
      Isa.Instr.Alui (Sll, reg 2, reg 1, 2);
      Isa.Instr.Out (reg 2);
      li (reg 3) (-1);
      Isa.Instr.Alui (Srl, reg 4, reg 3, 2);
      Isa.Instr.Out (reg 4);
      Isa.Instr.Alui (Sra, reg 5, reg 3, 2);
      Isa.Instr.Out (reg 5);
      Isa.Instr.Halt;
    ]

let test_alu_compare () =
  check_out "slt vs sltu" [ 1; 0 ]
    [
      li (reg 1) (-1);
      li (reg 2) 1;
      Isa.Instr.Alu (Slt, reg 3, reg 1, reg 2);
      Isa.Instr.Out (reg 3);
      Isa.Instr.Alu (Sltu, reg 4, reg 1, reg 2) (* 0xFFFFFFFF < 1 unsigned? no *);
      Isa.Instr.Out (reg 4);
      Isa.Instr.Halt;
    ]

let test_alu_div () =
  check_out "signed division truncates" [ -2 ]
    [
      li (reg 1) (-7);
      li (reg 2) 3;
      Isa.Instr.Alu (Div, reg 3, reg 1, reg 2);
      Isa.Instr.Out (reg 3);
      Isa.Instr.Halt;
    ]

let test_div_by_zero () =
  let b = Isa.Builder.create "t" in
  Isa.Builder.ins b (li (reg 1) 1);
  Isa.Builder.ins b (Isa.Instr.Alu (Div, reg 2, reg 1, Isa.Reg.zero));
  Isa.Builder.ins b Isa.Instr.Halt;
  let cpu = Machine.Cpu.of_image (Isa.Builder.build b) in
  match Machine.Cpu.run cpu with
  | exception Machine.Cpu.Fault (Machine.Cpu.Division_by_zero, _) -> ()
  | _ -> Alcotest.fail "expected division fault"

let test_r0_hardwired () =
  check_out "writes to r0 ignored" [ 0 ]
    [
      li Isa.Reg.zero 42;
      Isa.Instr.Out Isa.Reg.zero;
      Isa.Instr.Halt;
    ]

let test_lui_ori_li () =
  check_out "32-bit constant assembly" [ 0x12345678 ]
    [
      Isa.Instr.Lui (reg 1, 0x1234);
      Isa.Instr.Alui (Or, reg 1, reg 1, 0x5678);
      Isa.Instr.Out (reg 1);
      Isa.Instr.Halt;
    ]

(* ------------------------------------------------------------------ *)
(* Loads / stores *)

let test_load_store () =
  let b = Isa.Builder.create "mem" in
  let addr = Isa.Builder.word b 11 in
  Isa.Builder.li b (reg 1) addr;
  Isa.Builder.ins b (Isa.Instr.Ld (reg 2, reg 1, 0));
  Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 2, reg 2, 1));
  Isa.Builder.ins b (Isa.Instr.St (reg 2, reg 1, 0));
  Isa.Builder.ins b (Isa.Instr.Ld (reg 3, reg 1, 0));
  Isa.Builder.ins b (Isa.Instr.Out (reg 3));
  Isa.Builder.ins b (Isa.Instr.Stb (reg 3, reg 1, 5));
  Isa.Builder.ins b (Isa.Instr.Ldb (reg 4, reg 1, 5));
  Isa.Builder.ins b (Isa.Instr.Out (reg 4));
  Isa.Builder.ins b Isa.Instr.Halt;
  let img = Isa.Builder.build b in
  let cpu = Machine.Cpu.of_image img in
  let _ = Machine.Cpu.run cpu in
  Alcotest.(check (list int)) "load/store" [ 12; 12 ] (Machine.Cpu.outputs cpu)

(* ------------------------------------------------------------------ *)
(* Control flow *)

let test_branch_loop () =
  let b = Isa.Builder.create "loop" in
  Isa.Builder.li b (reg 1) 5;
  Isa.Builder.li b (reg 2) 0;
  let top = Isa.Builder.label b in
  Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 2, reg 1));
  Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 1, reg 1, -1));
  Isa.Builder.br b Ne (reg 1) Isa.Reg.zero top;
  Isa.Builder.ins b (Isa.Instr.Out (reg 2));
  Isa.Builder.ins b Isa.Instr.Halt;
  let cpu = Machine.Cpu.of_image (Isa.Builder.build b) in
  let _ = Machine.Cpu.run cpu in
  Alcotest.(check (list int)) "sum 1..5" [ 15 ] (Machine.Cpu.outputs cpu)

let test_call_return () =
  let b = Isa.Builder.create "call" in
  let double = Isa.Builder.new_label b in
  let main = Isa.Builder.new_label b in
  Isa.Builder.entry b main;
  Isa.Builder.func b "double" double (fun () ->
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 1, reg 1, reg 1));
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));
  Isa.Builder.func b "main" main (fun () ->
      Isa.Builder.li b (reg 1) 21;
      Isa.Builder.jal b double;
      Isa.Builder.ins b (Isa.Instr.Out (reg 1));
      Isa.Builder.ins b Isa.Instr.Halt);
  let cpu = Machine.Cpu.of_image (Isa.Builder.build b) in
  let _ = Machine.Cpu.run cpu in
  Alcotest.(check (list int)) "call/return" [ 42 ] (Machine.Cpu.outputs cpu)

let test_jalr_indirect () =
  let b = Isa.Builder.create "jalr" in
  let f = Isa.Builder.new_label b in
  let main = Isa.Builder.new_label b in
  Isa.Builder.entry b main;
  Isa.Builder.func b "f" f (fun () ->
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 1, reg 1, 100));
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));
  Isa.Builder.func b "main" main (fun () ->
      Isa.Builder.li b (reg 1) 1;
      Isa.Builder.la b (reg 5) f;
      Isa.Builder.ins b (Isa.Instr.Jalr (Isa.Reg.ra, reg 5));
      Isa.Builder.ins b (Isa.Instr.Out (reg 1));
      Isa.Builder.ins b Isa.Instr.Halt);
  let cpu = Machine.Cpu.of_image (Isa.Builder.build b) in
  let _ = Machine.Cpu.run cpu in
  Alcotest.(check (list int)) "jalr" [ 101 ] (Machine.Cpu.outputs cpu)

let test_out_of_fuel () =
  let b = Isa.Builder.create "spin" in
  let top = Isa.Builder.label b in
  Isa.Builder.jmp b top;
  let cpu = Machine.Cpu.of_image (Isa.Builder.build b) in
  Alcotest.(check bool)
    "spins forever" true
    (Machine.Cpu.run ~fuel:1000 cpu = Machine.Cpu.Out_of_fuel);
  Alcotest.(check int) "retired exactly fuel" 1000 cpu.retired

let test_invalid_opcode_fault () =
  let mem = Machine.Memory.create 1024 in
  Machine.Memory.write32 mem 0 (63 lsl 26);
  let cpu = Machine.Cpu.create ~mem ~pc:0 () in
  match Machine.Cpu.run cpu with
  | exception Machine.Cpu.Fault (Machine.Cpu.Invalid_opcode _, 0) -> ()
  | _ -> Alcotest.fail "expected invalid opcode fault"

let test_unhandled_trap_fault () =
  let cpu, outcome =
    match run_prog [ Isa.Instr.Trap 3; Isa.Instr.Halt ] with
    | r -> r
    | exception Machine.Cpu.Fault (Machine.Cpu.Unhandled_trap 3, _) ->
      raise Exit
  in
  ignore cpu;
  ignore outcome;
  Alcotest.fail "expected unhandled trap fault"

let test_unhandled_trap_fault () =
  try test_unhandled_trap_fault () with Exit -> ()

let test_trap_handler () =
  let b = Isa.Builder.create "trap" in
  Isa.Builder.ins b (Isa.Instr.Trap 7);
  Isa.Builder.ins b Isa.Instr.Halt;
  let img = Isa.Builder.build b in
  let cpu = Machine.Cpu.of_image img in
  let seen = ref (-1) in
  cpu.trap_handler <-
    Some
      (fun c k ->
        seen := k;
        c.pc <- c.pc + 4);
  let _ = Machine.Cpu.run cpu in
  Alcotest.(check int) "handler saw index" 7 !seen;
  Alcotest.(check bool) "halted after handler" true cpu.halted

let test_unaligned_jump_fault () =
  let b = Isa.Builder.create "uj" in
  Isa.Builder.li b (reg 1) 0x1002;
  Isa.Builder.ins b (Isa.Instr.Jr (reg 1));
  let cpu = Machine.Cpu.of_image (Isa.Builder.build b) in
  match Machine.Cpu.run cpu with
  | exception Machine.Cpu.Fault (Machine.Cpu.Unaligned_fetch _, _) -> ()
  | _ -> Alcotest.fail "expected unaligned fetch fault"

(* ------------------------------------------------------------------ *)
(* Cost accounting and hooks *)

let test_cycle_accounting () =
  let cost = Machine.Cost.default in
  let cpu, _ =
    run_prog ~cost
      [
        li (reg 1) 3 (* alu *);
        Isa.Instr.St (reg 1, Isa.Reg.sp, -4) (* store *);
        Isa.Instr.Ld (reg 2, Isa.Reg.sp, -4) (* load *);
        Isa.Instr.Br (Eq, reg 1, reg 2, 2) (* taken *);
        Isa.Instr.Nop (* skipped *);
        Isa.Instr.Br (Ne, reg 1, reg 2, -1) (* not taken *);
        Isa.Instr.Halt (* jump class *);
      ]
  in
  let expected =
    cost.alu + cost.store + cost.load + cost.branch_taken
    + cost.branch_not_taken + cost.jump
  in
  Alcotest.(check int) "cycles" expected cpu.cycles;
  Alcotest.(check int) "retired" 6 cpu.retired

let test_uniform_cost () =
  let cpu, _ = run_prog ~cost:(Machine.Cost.uniform 3) [ li (reg 1) 1; Isa.Instr.Halt ] in
  Alcotest.(check int) "uniform" 6 cpu.cycles

let test_fetch_hook () =
  let fetches = ref [] in
  let b = Isa.Builder.create "hook" in
  Isa.Builder.ins b Isa.Instr.Nop;
  Isa.Builder.ins b Isa.Instr.Nop;
  Isa.Builder.ins b Isa.Instr.Halt;
  let img = Isa.Builder.build b in
  let cpu = Machine.Cpu.of_image img in
  cpu.on_fetch <- Some (fun a -> fetches := a :: !fetches);
  let _ = Machine.Cpu.run cpu in
  Alcotest.(check (list int))
    "fetch trace"
    [ img.code_base; img.code_base + 4; img.code_base + 8 ]
    (List.rev !fetches)

let test_load_store_hooks () =
  let loads = ref 0 and stores = ref 0 in
  let b = Isa.Builder.create "hook2" in
  let a = Isa.Builder.word b 5 in
  Isa.Builder.li b (reg 1) a;
  Isa.Builder.ins b (Isa.Instr.Ld (reg 2, reg 1, 0));
  Isa.Builder.ins b (Isa.Instr.St (reg 2, reg 1, 0));
  Isa.Builder.ins b Isa.Instr.Halt;
  let cpu = Machine.Cpu.of_image (Isa.Builder.build b) in
  cpu.on_load <- Some (fun _ -> incr loads);
  cpu.on_store <- Some (fun _ -> incr stores);
  let _ = Machine.Cpu.run cpu in
  Alcotest.(check int) "loads" 1 !loads;
  Alcotest.(check int) "stores" 1 !stores

(* ------------------------------------------------------------------ *)
(* Decode cache: predecoded fetch, kept coherent by the writes
   themselves — no caller-side invalidation anywhere in these tests *)

let enc = Isa.Encode.encode

let test_decode_hit_miss_stats () =
  let m = Machine.Memory.create 64 in
  Machine.Memory.write32 m 0 (enc (li (reg 1) 5));
  Alcotest.(check bool)
    "miss fill" true
    (Machine.Memory.fetch_decoded m 0 = li (reg 1) 5);
  Alcotest.(check bool)
    "hit" true
    (Machine.Memory.fetch_decoded m 0 = li (reg 1) 5);
  let s = Machine.Memory.decode_stats m in
  Alcotest.(check int) "hits" 1 s.Machine.Memory.hits;
  Alcotest.(check int) "misses" 1 s.Machine.Memory.misses;
  Alcotest.(check int) "invalidations" 0 s.Machine.Memory.invalidations;
  Alcotest.(check bool)
    "peek sees the line" true
    (Machine.Memory.decode_peek m 0 = Some (li (reg 1) 5))

let test_decode_write32_invalidates () =
  let m = Machine.Memory.create 64 in
  Machine.Memory.write32 m 0 (enc (li (reg 1) 5));
  ignore (Machine.Memory.fetch_decoded m 0);
  Machine.Memory.write32 m 0 (enc (li (reg 2) 9));
  Alcotest.(check bool)
    "refetch sees the new word" true
    (Machine.Memory.fetch_decoded m 0 = li (reg 2) 9);
  Alcotest.(check int)
    "invalidation counted" 1
    (Machine.Memory.decode_stats m).Machine.Memory.invalidations

let test_decode_write8_invalidates () =
  let m = Machine.Memory.create 64 in
  let w_new = enc (Isa.Instr.Out (reg 1)) in
  Machine.Memory.write32 m 4 (enc (li (reg 1) 5));
  ignore (Machine.Memory.fetch_decoded m 4);
  for i = 0 to 3 do
    Machine.Memory.write8 m (4 + i) ((w_new lsr (8 * i)) land 0xFF)
  done;
  Alcotest.(check bool)
    "byte writes invalidate the covering line" true
    (Machine.Memory.fetch_decoded m 4 = Isa.Instr.Out (reg 1))

let test_decode_undecodable () =
  let m = Machine.Memory.create 64 in
  Machine.Memory.write32 m 0 (63 lsl 26);
  (match Machine.Memory.fetch_decoded m 0 with
  | exception Machine.Memory.Undecodable w ->
    Alcotest.(check int) "word reported" (63 lsl 26) w
  | _ -> Alcotest.fail "expected Undecodable");
  Alcotest.(check bool)
    "no line installed for an undecodable word" true
    (Machine.Memory.decode_peek m 0 = None)

let test_decode_load_data_flushes () =
  (* load_data blits bytes in bulk, bypassing write32/write8 — the
     decode cache must be flushed wholesale *)
  let b = Isa.Builder.create "flush" in
  let _ = Isa.Builder.word b 0xDEAD in
  Isa.Builder.ins b Isa.Instr.Halt;
  let img = Isa.Builder.build b in
  let m = Machine.Memory.create (2 * 1024 * 1024) in
  Machine.Memory.write32 m img.data_base (enc (li (reg 1) 5));
  ignore (Machine.Memory.fetch_decoded m img.data_base);
  Machine.Memory.load_data m img;
  Alcotest.(check bool)
    "stale line gone after bulk load" true
    (Machine.Memory.decode_peek m img.data_base = None)

let test_decode_aliasing () =
  (* more words than decode lines: addresses one line-array apart map
     to the same line and take turns missing, always correctly *)
  let m = Machine.Memory.create (256 * 1024) in
  let a = 0 and b = 128 * 1024 in
  Machine.Memory.write32 m a (enc (li (reg 1) 1));
  Machine.Memory.write32 m b (enc (li (reg 2) 2));
  for _ = 1 to 3 do
    Alcotest.(check bool)
      "alias a" true
      (Machine.Memory.fetch_decoded m a = li (reg 1) 1);
    Alcotest.(check bool)
      "alias b" true
      (Machine.Memory.fetch_decoded m b = li (reg 2) 2)
  done;
  Alcotest.(check (list int)) "audit clean" [] (Machine.Memory.decode_audit m)

(* A program that rewrites its own code and re-executes the patched
   word: the decoded engine must pick the store up on the next fetch. *)
let selfmod_image () =
  let b = Isa.Builder.create "selfmod" in
  let patch = Isa.Builder.new_label b in
  Isa.Builder.la b (reg 1) patch;
  Isa.Builder.li b (reg 2) (enc (Isa.Instr.Out (reg 9)));
  Isa.Builder.li b (reg 9) 42;
  Isa.Builder.li b (reg 3) 2;
  let top = Isa.Builder.label b in
  Isa.Builder.here b patch;
  Isa.Builder.ins b Isa.Instr.Nop (* becomes [out r9] mid-run *);
  Isa.Builder.ins b (Isa.Instr.St (reg 2, reg 1, 0));
  Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 3, reg 3, -1));
  Isa.Builder.br b Ne (reg 3) Isa.Reg.zero top;
  Isa.Builder.ins b Isa.Instr.Halt;
  ignore top;
  Isa.Builder.build b

let test_selfmod_both_engines () =
  let img = selfmod_image () in
  let run engine =
    let cpu = Machine.Cpu.of_image ~engine img in
    let outcome = Machine.Cpu.run ~fuel:1000 cpu in
    Alcotest.(check bool) "halted" true (outcome = Machine.Cpu.Halted);
    Machine.Cpu.outputs cpu
  in
  Alcotest.(check (list int))
    "decoded engine sees its own store" [ 42 ]
    (run Machine.Cpu.Decoded);
  Alcotest.(check (list int))
    "interpretive engine agrees" [ 42 ]
    (run Machine.Cpu.Interpretive)

(* Deterministic execution: same program, same result, twice. *)
let test_determinism =
  QCheck.Test.make ~count:50 ~name:"execution is deterministic"
    QCheck.(make Gen.(int_range 1 300))
    (fun n ->
      let build () =
        let b = Isa.Builder.create "det" in
        Isa.Builder.li b (reg 1) n;
        Isa.Builder.li b (reg 2) 1;
        let top = Isa.Builder.label b in
        Isa.Builder.ins b (Isa.Instr.Alu (Mul, reg 2, reg 2, reg 1));
        Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 1, reg 1, -1));
        Isa.Builder.br b Ne (reg 1) Isa.Reg.zero top;
        Isa.Builder.ins b (Isa.Instr.Out (reg 2));
        Isa.Builder.ins b Isa.Instr.Halt;
        Isa.Builder.build b
      in
      let r1 = Machine.Cpu.of_image (build ()) in
      let r2 = Machine.Cpu.of_image (build ()) in
      let _ = Machine.Cpu.run r1 and _ = Machine.Cpu.run r2 in
      Machine.Cpu.outputs r1 = Machine.Cpu.outputs r2
      && r1.cycles = r2.cycles && r1.retired = r2.retired)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "machine"
    [
      ( "memory",
        [
          Alcotest.test_case "read/write" `Quick test_memory_rw;
          Alcotest.test_case "faults" `Quick test_memory_faults;
          Alcotest.test_case "hash" `Quick test_memory_hash;
        ] );
      ( "alu",
        [
          Alcotest.test_case "wraparound" `Quick test_alu_wraparound;
          Alcotest.test_case "bitwise imm zero-extends" `Quick
            test_alu_bitwise_zero_extends;
          Alcotest.test_case "shifts" `Quick test_alu_shifts;
          Alcotest.test_case "compare" `Quick test_alu_compare;
          Alcotest.test_case "division" `Quick test_alu_div;
          Alcotest.test_case "division by zero" `Quick test_div_by_zero;
          Alcotest.test_case "r0 hardwired" `Quick test_r0_hardwired;
          Alcotest.test_case "lui/ori" `Quick test_lui_ori_li;
        ] );
      ( "mem-ops",
        [ Alcotest.test_case "load/store" `Quick test_load_store ] );
      ( "decode-cache",
        [
          Alcotest.test_case "hit/miss/stats" `Quick test_decode_hit_miss_stats;
          Alcotest.test_case "write32 invalidates" `Quick
            test_decode_write32_invalidates;
          Alcotest.test_case "write8 invalidates" `Quick
            test_decode_write8_invalidates;
          Alcotest.test_case "undecodable" `Quick test_decode_undecodable;
          Alcotest.test_case "load_data flushes" `Quick
            test_decode_load_data_flushes;
          Alcotest.test_case "aliasing" `Quick test_decode_aliasing;
          Alcotest.test_case "self-modifying code, both engines" `Quick
            test_selfmod_both_engines;
        ] );
      ( "control",
        [
          Alcotest.test_case "branch loop" `Quick test_branch_loop;
          Alcotest.test_case "call/return" `Quick test_call_return;
          Alcotest.test_case "jalr" `Quick test_jalr_indirect;
          Alcotest.test_case "out of fuel" `Quick test_out_of_fuel;
          Alcotest.test_case "invalid opcode" `Quick test_invalid_opcode_fault;
          Alcotest.test_case "unhandled trap" `Quick test_unhandled_trap_fault;
          Alcotest.test_case "trap handler" `Quick test_trap_handler;
          Alcotest.test_case "unaligned jump" `Quick test_unaligned_jump_fault;
        ] );
      ( "cost",
        [
          Alcotest.test_case "accounting" `Quick test_cycle_accounting;
          Alcotest.test_case "uniform" `Quick test_uniform_cost;
          Alcotest.test_case "fetch hook" `Quick test_fetch_hook;
          Alcotest.test_case "load/store hooks" `Quick test_load_store_hooks;
          qt test_determinism;
        ] );
    ]
