(* Tests for the supporting models: the network channel, the profiler,
   the power model and the report rendering. *)

(* ------------------------------------------------------------------ *)
(* Netmodel *)

let test_net_local () =
  let n = Netmodel.local () in
  Alcotest.(check int) "free" 0 (Netmodel.request n ~payload_bytes:1000);
  Alcotest.(check int) "message counted" 1 (Netmodel.messages n);
  Alcotest.(check int) "payload counted" 1000 (Netmodel.payload_bytes n);
  Alcotest.(check int) "no overhead" 1000 (Netmodel.total_bytes n)

let test_net_cost_arithmetic () =
  let n = Netmodel.create ~latency_cycles:100 ~cycles_per_byte:2
      ~overhead_bytes:60 ()
  in
  Alcotest.(check int)
    "latency + bytes" (100 + (2 * (40 + 60)))
    (Netmodel.request n ~payload_bytes:40);
  Alcotest.(check int) "total includes overhead" 100 (Netmodel.total_bytes n);
  let _ = Netmodel.request n ~payload_bytes:0 in
  Alcotest.(check int) "two messages" 2 (Netmodel.messages n);
  Alcotest.(check int) "overhead per message" 160 (Netmodel.total_bytes n);
  Netmodel.reset_stats n;
  Alcotest.(check int) "reset" 0 (Netmodel.messages n)

let test_net_ethernet_preset () =
  let n = Netmodel.ethernet_10mbps () in
  (* 200 MHz over 10 Mbps: 160 cycles per byte *)
  Alcotest.(check int)
    "per-byte rate" (100_000 + (160 * 61))
    (Netmodel.request n ~payload_bytes:1);
  Alcotest.(check int) "60B protocol overhead" 60
    (Netmodel.overhead_bytes_per_message n)

(* ------------------------------------------------------------------ *)
(* Profiler *)

let reg = Isa.Reg.r

(* Two functions: [hot] runs a long loop, [cold] runs once. *)
let profiled_image n =
  let b = Isa.Builder.create "prof" in
  let hot = Isa.Builder.new_label b in
  let cold = Isa.Builder.new_label b in
  let main = Isa.Builder.new_label b in
  Isa.Builder.entry b main;
  Isa.Builder.func b "hot" hot (fun () ->
      Isa.Builder.li b (reg 1) n;
      let top = Isa.Builder.label b in
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 2, reg 2, 3));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 1, reg 1, -1));
      Isa.Builder.br b Ne (reg 1) Isa.Reg.zero top;
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));
  Isa.Builder.func b "cold" cold (fun () ->
      for _ = 1 to 10 do
        Isa.Builder.ins b Isa.Instr.Nop
      done;
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));
  Isa.Builder.func b "main" main (fun () ->
      Isa.Builder.jal b cold;
      Isa.Builder.jal b hot;
      Isa.Builder.ins b (Isa.Instr.Out (reg 2));
      Isa.Builder.ins b Isa.Instr.Halt);
  Isa.Builder.build b

let test_profiler_hot_set () =
  let img = profiled_image 5000 in
  let prof, cpu = Profiler.profile img in
  Alcotest.(check bool) "ran" true (cpu.retired > 15000);
  Alcotest.(check int) "samples = retired" cpu.retired
    (Profiler.total_samples prof);
  let hot = Profiler.hot_set prof in
  Alcotest.(check bool) "hot set nonempty" true (hot <> []);
  Alcotest.(check string) "hottest is hot" "hot" (List.hd hot).name;
  Alcotest.(check bool)
    "cold not in 90% set" true
    (not (List.exists (fun (e : Profiler.entry) -> e.name = "cold") hot))

let test_profiler_dynamic_text () =
  let img = profiled_image 50 in
  let prof, _ = Profiler.profile img in
  (* every instruction of this little program executes at least once *)
  Alcotest.(check int) "dynamic = static here"
    (Isa.Image.static_text_bytes img)
    (Profiler.dynamic_text_bytes prof);
  Alcotest.(check int) "touched_in full range"
    (Isa.Image.static_text_bytes img)
    (Profiler.touched_in prof ~lo:img.code_base
       ~hi:(Isa.Image.code_end img))

let test_profiler_hook_chaining () =
  let img = profiled_image 10 in
  let prof = Profiler.create img in
  let cpu = Machine.Cpu.of_image img in
  let count = ref 0 in
  cpu.on_fetch <- Some (fun _ -> incr count);
  Profiler.attach prof cpu;
  let _ = Machine.Cpu.run cpu in
  Alcotest.(check int) "both hooks ran" cpu.retired !count;
  Alcotest.(check int) "profiler counted too" cpu.retired
    (Profiler.total_samples prof)

(* Regression: an unaligned upper bound must round up, so the final
   partially covered word of an odd-sized symbol is still attributed
   to the range. *)
let test_profiler_unaligned_range () =
  let img = profiled_image 50 in
  let prof, _ = Profiler.profile img in
  let hot =
    List.find (fun (s : Isa.Image.symbol) -> s.sym_name = "hot") img.symbols
  in
  let lo = hot.sym_addr in
  let full = Profiler.samples_in prof ~lo ~hi:(lo + 4) in
  Alcotest.(check bool) "first word sampled" true (full > 0);
  Alcotest.(check int) "hi = lo+1 still covers the word" full
    (Profiler.samples_in prof ~lo ~hi:(lo + 1));
  Alcotest.(check int) "touched_in rounds up too"
    (Profiler.touched_in prof ~lo ~hi:(lo + 4))
    (Profiler.touched_in prof ~lo ~hi:(lo + 1));
  (* treat the symbol as odd-sized: chopping 3 bytes off its end must
     not lose the samples of its (executed) final word *)
  let sz = hot.sym_size in
  Alcotest.(check bool) "final word executed" true
    (Profiler.samples_in prof ~lo:(lo + sz - 4) ~hi:(lo + sz) > 0);
  Alcotest.(check int) "odd-sized symbol = whole symbol"
    (Profiler.samples_in prof ~lo ~hi:(lo + sz))
    (Profiler.samples_in prof ~lo ~hi:(lo + sz - 3))

let test_profiler_threshold () =
  let img = profiled_image 5000 in
  let prof, _ = Profiler.profile img in
  let b100 = Profiler.hot_bytes ~threshold:1.0 prof in
  let b50 = Profiler.hot_bytes ~threshold:0.5 prof in
  Alcotest.(check bool) "higher threshold, more bytes" true (b100 >= b50);
  Alcotest.(check bool) "50% is just the loop" true (b50 <= 40)

(* Edge cases the temperature oracle builds on: a zero-sample profile
   must yield an empty (not NaN-poisoned) hot set, and threshold 1.0
   must return every sample-bearing entry exactly — float fraction
   accumulation could stop short of 1.0. *)
let test_profiler_hot_set_edges () =
  let img = profiled_image 50 in
  (* never run: zero samples *)
  let empty = Profiler.create img in
  Alcotest.(check int) "zero-sample profile: no samples" 0
    (Profiler.total_samples empty);
  Alcotest.(check bool) "zero-sample hot set is empty" true
    (Profiler.hot_set empty = []);
  Alcotest.(check int) "zero-sample hot bytes" 0 (Profiler.hot_bytes empty);
  Alcotest.(check bool) "zero-sample, threshold 1.0, still empty" true
    (Profiler.hot_set ~threshold:1.0 empty = []);
  (* a real run: the 100% set must cover every sample exactly *)
  let prof, _ = Profiler.profile img in
  let all = Profiler.hot_set ~threshold:1.0 prof in
  let covered =
    List.fold_left (fun a (e : Profiler.entry) -> a + e.samples) 0 all
  in
  Alcotest.(check int) "threshold 1.0 covers every sample"
    (Profiler.total_samples prof)
    covered;
  Alcotest.(check bool) "threshold 1.0 includes the cold entry" true
    (List.exists (fun (e : Profiler.entry) -> e.name = "cold") all)

let sym_range img name =
  let s =
    List.find (fun (s : Isa.Image.symbol) -> s.sym_name = name)
      img.Isa.Image.symbols
  in
  (s.sym_addr, s.sym_addr + s.sym_size)

let test_temperature_classifier () =
  let img = profiled_image 5000 in
  let prof, _ = Profiler.profile img in
  let classify = Profiler.temperature_classifier prof in
  let hot_lo, hot_hi = sym_range img "hot" in
  let cold_lo, cold_hi = sym_range img "cold" in
  Alcotest.(check string) "loop body is hot" "hot"
    (Profiler.temperature_name (classify ~lo:hot_lo ~hi:hot_hi));
  Alcotest.(check string) "run-once code is cold" "cold"
    (Profiler.temperature_name (classify ~lo:cold_lo ~hi:cold_hi));
  Alcotest.(check string) "never-executed range is cold" "cold"
    (Profiler.temperature_name (classify ~lo:0 ~hi:4));
  (* degenerate profiles rank nothing: everything reads cold *)
  let empty = Profiler.create img in
  let classify0 = Profiler.temperature_classifier empty in
  Alcotest.(check string) "zero-sample profile: cold" "cold"
    (Profiler.temperature_name (classify0 ~lo:hot_lo ~hi:hot_hi));
  (* n=1 executes every reached instruction exactly once — a flat
     profile with no contrast *)
  let flat, _ = Profiler.profile (profiled_image 1) in
  let classifyf = Profiler.temperature_classifier flat in
  Alcotest.(check string) "flat profile: even the loop is cold" "cold"
    (Profiler.temperature_name (classifyf ~lo:hot_lo ~hi:hot_hi));
  Alcotest.(check bool) "invalid bands rejected" true
    (match
       let (_ : lo:int -> hi:int -> Profiler.temperature) =
         Profiler.temperature_classifier ~hot:0.9 ~warm:0.5 prof
       in
       false
     with
    | ok -> ok
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Powermodel *)

let test_strongarm_fractions () =
  Alcotest.(check (float 1e-9)) "45% total" 0.45
    Powermodel.Strongarm.cache_total_fraction

let test_tag_energy () =
  let t =
    Powermodel.Tag_energy.of_cache ~size_bytes:8192 ~block_bytes:16 ~assoc:1
  in
  (* 512 sets: tag = 32 - 9 - 4 + 1 = 20 bits *)
  Alcotest.(check int) "tag bits" 20 t.tag_bits;
  Alcotest.(check (float 1e-9))
    "hw energy" (float_of_int 1000 *. (1. +. (20. /. 32.)))
    (Powermodel.Tag_energy.hw_energy t ~accesses:1000);
  Alcotest.(check bool)
    "sw wins with low overhead" true
    (Powermodel.Tag_energy.sw_saving t ~accesses:1000 ~overhead_instrs:100
     > 0.0);
  Alcotest.(check bool)
    "sw loses with huge overhead" true
    (Powermodel.Tag_energy.sw_saving t ~accesses:1000 ~overhead_instrs:2000
     < 0.0);
  (* 2-way probes both tags *)
  let t2 =
    Powermodel.Tag_energy.of_cache ~size_bytes:8192 ~block_bytes:16 ~assoc:2
  in
  Alcotest.(check bool) "assoc reads more tag bits" true
    (t2.tag_bits > t.tag_bits)

let test_banks () =
  let b = Powermodel.Banks.make ~bank_bytes:4096 ~banks:8 () in
  Alcotest.(check int) "total" 32768 (Powermodel.Banks.total_bytes b);
  Alcotest.(check int) "empty ws needs 1 bank" 1
    (Powermodel.Banks.active_banks b ~working_set:0);
  Alcotest.(check int) "1 byte needs 1 bank" 1
    (Powermodel.Banks.active_banks b ~working_set:1);
  Alcotest.(check int) "4097 needs 2" 2
    (Powermodel.Banks.active_banks b ~working_set:4097);
  Alcotest.(check int) "overfull capped" 8
    (Powermodel.Banks.active_banks b ~working_set:1_000_000);
  Alcotest.(check (float 1e-9))
    "all active = full power" 1.0
    (Powermodel.Banks.memory_power_fraction b ~working_set:32768);
  let one = Powermodel.Banks.memory_power_fraction b ~working_set:100 in
  Alcotest.(check (float 1e-9)) "1 active + 7 asleep"
    ((1.0 +. (7.0 *. 0.08)) /. 8.0)
    one;
  Alcotest.(check bool)
    "chip saving bounded by 45%" true
    (Powermodel.Banks.chip_saving b ~working_set:1
     < Powermodel.Strongarm.cache_total_fraction);
  match Powermodel.Banks.make ~sleep_fraction:1.5 ~bank_bytes:1 ~banks:1 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad sleep fraction should raise"

let test_banks_monotonic =
  QCheck.Test.make ~count:100 ~name:"bank power monotone in working set"
    QCheck.(make Gen.(pair (int_bound 40000) (int_bound 40000)))
    (fun (w1, w2) ->
      let b = Powermodel.Banks.make ~bank_bytes:4096 ~banks:8 () in
      let lo = min w1 w2 and hi = max w1 w2 in
      Powermodel.Banks.memory_power_fraction b ~working_set:lo
      <= Powermodel.Banks.memory_power_fraction b ~working_set:hi +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Report *)

let test_report_table () =
  let t = Report.Table.create ~title:"t" ~columns:[ "a"; "b" ] in
  Report.Table.add_row t [ "1"; "22" ];
  Report.Table.add_row t [ "333"; "4" ];
  (match Report.Table.add_row t [ "too"; "many"; "cells" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "wrong arity should raise");
  Alcotest.(check string) "csv" "a,b\n1,22\n333,4" (Report.Table.to_csv t)

let test_report_csv_escaping () =
  let t = Report.Table.create ~title:"t" ~columns:[ "x" ] in
  Report.Table.add_row t [ "a,b" ];
  Report.Table.add_row t [ "say \"hi\"" ];
  Alcotest.(check string) "escaped" "x\n\"a,b\"\n\"say \"\"hi\"\"\""
    (Report.Table.to_csv t)

let test_report_csv_newlines () =
  (* embedded CR/LF must be quoted, or the cell splits into bogus rows *)
  let t = Report.Table.create ~title:"t" ~columns:[ "x"; "y" ] in
  Report.Table.add_row t [ "line1\nline2"; "b" ];
  Report.Table.add_row t [ "cr\rhere"; "c" ];
  Alcotest.(check string) "quoted"
    "x,y\n\"line1\nline2\",b\n\"cr\rhere\",c"
    (Report.Table.to_csv t)

let test_report_separator_width () =
  (* the underline must be exactly as wide as the rendered header line
     (indent excluded), whatever the column and cell widths *)
  let t =
    Report.Table.create ~title:"t" ~columns:[ "a"; "long header"; "c" ]
  in
  Report.Table.add_row t [ "wide cell value"; "x"; "y" ];
  match String.split_on_char '\n' (Report.Table.render t) with
  | _title :: header :: sep :: _rows ->
    Alcotest.(check int)
      "separator matches header width"
      (String.length header) (String.length sep);
    Alcotest.(check bool)
      "separator is dashes" true
      (String.for_all (fun c -> c = '-') (String.trim sep))
  | _ -> Alcotest.fail "render produced fewer than three lines"

let test_report_series () =
  let s = Report.Series.create ~title:"s" ~xlabel:"x" ~ylabel:"y" in
  Report.Series.add s 1.0 2.0;
  Report.Series.add s 2.0 4.0;
  Alcotest.(check int) "points" 2 (List.length (Report.Series.points s));
  Alcotest.(check string) "csv" "x,y\n1,2\n2,4" (Report.Series.to_csv s)

let test_report_stats () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Report.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "mean empty" 0.0 (Report.mean []);
  Alcotest.(check (float 1e-9)) "geomean" 2.0 (Report.geomean [ 1.0; 4.0 ]);
  Alcotest.(check (float 1e-9)) "geomean empty" 0.0 (Report.geomean []);
  (match Report.geomean [ 2.0; 0.0; 8.0 ] with
  | exception Invalid_argument _ -> ()
  | v -> Alcotest.failf "non-positive input should raise, got %g" v);
  (match Report.geomean [ 2.0; -3.0 ] with
  | exception Invalid_argument _ -> ()
  | v -> Alcotest.failf "negative input should raise, got %g" v);
  Alcotest.(check (float 1e-9)) "geomean skips non-positive" 4.0
    (Report.geomean ~on_nonpositive:`Skip [ 2.0; 0.0; 8.0; -1.0 ]);
  Alcotest.(check (float 1e-9)) "geomean all skipped" 0.0
    (Report.geomean ~on_nonpositive:`Skip [ 0.0; -1.0 ]);
  Alcotest.(check string) "bytes small" "800 B" (Report.fmt_bytes 800);
  Alcotest.(check string) "bytes KB" "24.0 KB" (Report.fmt_bytes (24 * 1024));
  Alcotest.(check string) "bytes MB" "1.5 MB"
    (Report.fmt_bytes (3 * 512 * 1024))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "models"
    [
      ( "netmodel",
        [
          Alcotest.test_case "local preset" `Quick test_net_local;
          Alcotest.test_case "cost arithmetic" `Quick test_net_cost_arithmetic;
          Alcotest.test_case "ethernet preset" `Quick test_net_ethernet_preset;
        ] );
      ( "profiler",
        [
          Alcotest.test_case "hot set" `Quick test_profiler_hot_set;
          Alcotest.test_case "dynamic text" `Quick test_profiler_dynamic_text;
          Alcotest.test_case "hook chaining" `Quick test_profiler_hook_chaining;
          Alcotest.test_case "threshold" `Quick test_profiler_threshold;
          Alcotest.test_case "hot set edge cases" `Quick
            test_profiler_hot_set_edges;
          Alcotest.test_case "temperature classifier" `Quick
            test_temperature_classifier;
          Alcotest.test_case "unaligned range rounds up" `Quick
            test_profiler_unaligned_range;
        ] );
      ( "powermodel",
        [
          Alcotest.test_case "strongarm fractions" `Quick
            test_strongarm_fractions;
          Alcotest.test_case "tag energy" `Quick test_tag_energy;
          Alcotest.test_case "banks" `Quick test_banks;
          qt test_banks_monotonic;
        ] );
      ( "report",
        [
          Alcotest.test_case "table" `Quick test_report_table;
          Alcotest.test_case "csv escaping" `Quick test_report_csv_escaping;
          Alcotest.test_case "csv newline quoting" `Quick
            test_report_csv_newlines;
          Alcotest.test_case "separator width" `Quick
            test_report_separator_width;
          Alcotest.test_case "series" `Quick test_report_series;
          Alcotest.test_case "stats helpers" `Quick test_report_stats;
        ] );
    ]
