(* The replacement-policy layer.

   Three proof obligations, in order of importance:
   - the refactor changed nothing: fifo and flush-all reproduce the
     pre-refactor controller cycle-for-cycle on golden workloads (the
     numbers below were captured from the monolithic controller before
     the policy extraction);
   - the policy abstraction behaves: victims are deterministic, pinned
     blocks are never selected, the resident view tracks the tcache,
     and a tcache full of pinned blocks fails cleanly instead of
     looping;
   - the miss path's re-allocation guard surfaces pathological
     persistent-stub growth as a diagnosable exception. *)

let reg = Isa.Reg.r

(* ------------------------------------------------------------------ *)
(* Golden cycle-identity: fifo and flush-all, re-expressed as policy
   modules, must be byte-identical to the pre-refactor controller.
   Cycles and translation counts below were recorded from the seed
   implementation on these exact configurations. *)

let golden =
  [
    ("compress95", 2048, Softcache.Config.Fifo, 13582157, 170953);
    ("compress95", 4096, Softcache.Config.Fifo, 13574221, 170822);
    ("compress95", 2048, Softcache.Config.Flush_all, 13509749, 171765);
    ("compress95", 4096, Softcache.Config.Flush_all, 13384621, 171216);
    ("mpeg2enc", 2048, Softcache.Config.Fifo, 7692069, 78185);
    ("mpeg2enc", 4096, Softcache.Config.Fifo, 7693337, 78175);
    ("mpeg2enc", 4096, Softcache.Config.Flush_all, 7654295, 78207);
    ("sensor_modes", 2048, Softcache.Config.Fifo, 2645071, 22);
    ("sensor_modes", 2048, Softcache.Config.Flush_all, 2646491, 34);
  ]

let test_golden_cycle_identity () =
  List.iter
    (fun (wname, tcache_bytes, eviction, cycles, translations) ->
      let img = (Option.get (Workloads.Registry.find wname)).build () in
      let cfg = Softcache.Config.make ~tcache_bytes ~eviction () in
      let cached, ctrl = Softcache.Runner.cached cfg img in
      let label =
        Printf.sprintf "%s/%s/%dB" wname
          (Softcache.Config.eviction_name eviction)
          tcache_bytes
      in
      Alcotest.(check int) (label ^ " cycles") cycles cached.cycles;
      Alcotest.(check int)
        (label ^ " translations")
        translations ctrl.stats.translations)
    golden

(* ------------------------------------------------------------------ *)
(* Policy unit behaviour on a synthetic tcache *)

let mk_block ~id ~vaddr ~paddr ~words =
  {
    Softcache.Tcache.id;
    vaddr;
    paddr;
    words;
    orig_words = words;
    incoming = [];
    pads = [];
    resume = [||];
    stubs = [];
  }

(* three resident blocks, installed in id order, none entered yet *)
let synthetic eviction =
  let tc = Softcache.Tcache.create ~base:0x10000 ~bytes:4096 in
  let p = Softcache.Policy.create eviction in
  let module P = (val p : Softcache.Policy.S) in
  let blocks =
    List.map
      (fun i -> mk_block ~id:i ~vaddr:(i * 64) ~paddr:(0x10000 + (i * 64)) ~words:8)
      [ 0; 1; 2 ]
  in
  List.iter
    (fun b ->
      Softcache.Tcache.register tc b;
      P.on_install b)
    blocks;
  (tc, p, blocks)

let victim_id p tc =
  let module P = (val p : Softcache.Policy.S) in
  Option.map (fun (b : Softcache.Tcache.block) -> b.id) (P.victim tc)

let test_registry_names () =
  List.iter
    (fun (name, ev) ->
      let module P = (val Softcache.Policy.create ev : Softcache.Policy.S) in
      Alcotest.(check string) "name matches table" name P.name;
      Alcotest.(check bool) "kind matches constructor" true
        (match (ev, P.kind) with
        | Softcache.Config.Flush_all, `Flush_all -> true
        | (Softcache.Config.Fifo | Lru | Rrip | Trrip), `Evict -> true
        | _ -> false);
      Alcotest.(check (list int)) "empty resident view" [] (P.resident_ids ());
      Alcotest.(check bool) "debug state prints" true
        (String.length (P.debug_state ()) > 0))
    Softcache.Config.eviction_table

let test_reason_names_match_trace () =
  (* the trace validator accepts exactly the reasons the policy layer
     can emit — a rename on either side must fail here *)
  Alcotest.(check (list string))
    "single source of truth" Trace.evict_reasons Softcache.Policy.reason_names

let test_fifo_never_volunteers () =
  List.iter
    (fun ev ->
      let tc, p, blocks = synthetic ev in
      Alcotest.(check (option int)) "no victim opinion" None (victim_id p tc);
      let module P = (val p : Softcache.Policy.S) in
      List.iter (fun b -> P.on_entry b) blocks;
      Alcotest.(check (option int)) "still none after entries" None
        (victim_id p tc))
    [ Softcache.Config.Fifo; Softcache.Config.Flush_all ]

let test_lru_defers_to_sweep_when_cold () =
  (* no observed entries anywhere: the sweep's candidate is as good as
     any, so the policy must not deviate *)
  let tc, p, blocks = synthetic Softcache.Config.Lru in
  Alcotest.(check (option int)) "cold cache: defer" None (victim_id p tc);
  (* entry on a non-candidate block changes nothing: the sweep's
     candidate (block 0, lowest placement) is still cold *)
  let module P = (val p : Softcache.Policy.S) in
  P.on_entry (List.nth blocks 2);
  Alcotest.(check (option int)) "sweep candidate cold: defer" None
    (victim_id p tc)

let test_lru_overrides_sweep_for_fresh_block () =
  let tc, p, blocks = synthetic Softcache.Config.Lru in
  let module P = (val p : Softcache.Policy.S) in
  (* the sweep would kill block 0, but it was just entered: the policy
     must offer the least-recently-used block instead *)
  P.on_entry (List.hd blocks);
  Alcotest.(check (option int)) "protects the entered block" (Some 1)
    (victim_id p tc);
  (* pinning the would-be victim redirects to the next-least-recent *)
  Softcache.Tcache.pin tc (List.nth blocks 1);
  Alcotest.(check (option int)) "never a pinned block" (Some 2)
    (victim_id p tc);
  (* victim is a pure query: asking repeatedly must not change it *)
  Alcotest.(check (option int)) "pure query" (Some 2) (victim_id p tc)

let test_rrip_promotes_on_entry () =
  let tc, p, blocks = synthetic Softcache.Config.Rrip in
  let module P = (val p : Softcache.Policy.S) in
  Alcotest.(check (option int)) "cold cache: defer" None (victim_id p tc);
  P.on_entry (List.hd blocks);
  (* sweep candidate promoted to near-immediate re-reference; the
     victim is the most distant block, oldest insertion on ties *)
  Alcotest.(check (option int)) "evicts most distant, oldest first" (Some 1)
    (victim_id p tc);
  Softcache.Tcache.pin tc (List.nth blocks 1);
  Alcotest.(check (option int)) "never a pinned block" (Some 2)
    (victim_id p tc)

(* ------------------------------------------------------------------ *)
(* Tie-break determinism: equal keys must resolve on the smaller block
   id — never on Hashtbl.fold visit order, which depends on the table's
   insertion history. Same residents, both insertion orders, same
   answer. *)

let test_pick_min_tie_breaks_on_id () =
  let tc = Softcache.Tcache.create ~base:0x10000 ~bytes:4096 in
  let pick order =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun id ->
        let b =
          mk_block ~id ~vaddr:(id * 64) ~paddr:(0x10000 + (id * 64)) ~words:8
        in
        (* every resident carries the same key *)
        Hashtbl.replace tbl id (b, 42))
      order;
    Option.map
      (fun (b : Softcache.Tcache.block) -> b.id)
      (Softcache.Policy.pick_min tbl ~key:(fun m -> m) tc)
  in
  let ids = [ 3; 9; 4; 7; 12; 5 ] in
  Alcotest.(check (option int)) "forward insertion" (Some 3) (pick ids);
  Alcotest.(check (option int)) "reverse insertion" (Some 3)
    (pick (List.rev ids));
  Alcotest.(check (option int)) "two residents, 1 then 5" (Some 1)
    (pick [ 1; 5 ]);
  Alcotest.(check (option int)) "two residents, 5 then 1" (Some 1)
    (pick [ 5; 1 ]);
  (* pinning the tie-break winner promotes the next id *)
  let b3 = mk_block ~id:3 ~vaddr:192 ~paddr:(0x10000 + 192) ~words:8 in
  Softcache.Tcache.register tc b3;
  Softcache.Tcache.pin tc b3;
  Alcotest.(check (option int)) "pinned winner skipped" (Some 4) (pick ids)

let test_sweep_candidate_tie_breaks_on_id () =
  let tc = Softcache.Tcache.create ~base:0x10000 ~bytes:4096 in
  let pick order =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun id ->
        (* all at the same placement: live blocks never overlap, but
           the selection must be syntactically deterministic anyway *)
        let b = mk_block ~id ~vaddr:(id * 64) ~paddr:0x10100 ~words:8 in
        Hashtbl.replace tbl id (b, ()))
      order;
    Option.map
      (fun ((b : Softcache.Tcache.block), ()) -> b.id)
      (Softcache.Policy.sweep_candidate tbl tc)
  in
  Alcotest.(check (option int)) "forward insertion" (Some 2) (pick [ 2; 8; 5 ]);
  Alcotest.(check (option int)) "reverse insertion" (Some 2) (pick [ 5; 8; 2 ])

(* ------------------------------------------------------------------ *)
(* trrip: temperature-aware rrip *)

let trrip_oracle f p =
  let module P = (val p : Softcache.Policy.S) in
  P.set_temperature_oracle f

let test_trrip_no_oracle_acts_like_rrip () =
  (* the exact scenario of test_rrip_promotes_on_entry, on trrip with
     no oracle attached: decisions must match rrip's *)
  let tc, p, blocks = synthetic Softcache.Config.Trrip in
  let module P = (val p : Softcache.Policy.S) in
  Alcotest.(check (option int)) "cold cache: defer" None (victim_id p tc);
  P.on_entry (List.hd blocks);
  Alcotest.(check (option int)) "evicts most distant, oldest first" (Some 1)
    (victim_id p tc);
  Softcache.Tcache.pin tc (List.nth blocks 1);
  Alcotest.(check (option int)) "never a pinned block" (Some 2)
    (victim_id p tc)

let test_trrip_hot_prior_protects_unentered () =
  (* block 0 (vaddr 0) classifies hot; no entries were ever observed.
     rrip is blind here and defers to the sweep, killing the hot block;
     trrip's prior protects it and offers the oldest cold block. *)
  let tc = Softcache.Tcache.create ~base:0x10000 ~bytes:4096 in
  let p = Softcache.Policy.create Softcache.Config.Trrip in
  let module P = (val p : Softcache.Policy.S) in
  P.set_temperature_oracle
    (Some
       (fun ~lo ~hi:_ ->
         if lo < 64 then Softcache.Policy.Hot else Softcache.Policy.Cold));
  let blocks =
    List.map
      (fun i ->
        mk_block ~id:i ~vaddr:(i * 64) ~paddr:(0x10000 + (i * 64)) ~words:8)
      [ 0; 1; 2 ]
  in
  List.iter
    (fun b ->
      Softcache.Tcache.register tc b;
      P.on_install b)
    blocks;
  Alcotest.(check (option int)) "protects the hot block before any entry"
    (Some 1) (victim_id p tc);
  Softcache.Tcache.pin tc (List.nth blocks 1);
  Alcotest.(check (option int)) "never a pinned block" (Some 2)
    (victim_id p tc);
  Alcotest.(check (option int)) "pure query" (Some 2) (victim_id p tc)

let test_trrip_constant_cold_oracle_is_rrip () =
  (* the classifier degrades flat profiles to constant Cold; under that
     oracle trrip must still decide exactly like rrip *)
  let tc, p, blocks = synthetic Softcache.Config.Trrip in
  let module P = (val p : Softcache.Policy.S) in
  trrip_oracle (Some (fun ~lo:_ ~hi:_ -> Softcache.Policy.Cold)) p;
  Alcotest.(check (option int)) "cold cache: defer" None (victim_id p tc);
  P.on_entry (List.hd blocks);
  Alcotest.(check (option int)) "same decision as rrip" (Some 1)
    (victim_id p tc)

(* Decision-identity property: over random install/entry/evict/flush
   schedules, trrip with no oracle (and with the constant-cold oracle a
   degenerate profile produces) must make exactly rrip's victim choice
   after every event, with identical resident views. *)
let trrip_rrip_identity ~cold_oracle ops =
  let tc = Softcache.Tcache.create ~base:0x10000 ~bytes:4096 in
  let rr = Softcache.Policy.create Softcache.Config.Rrip in
  let tr = Softcache.Policy.create Softcache.Config.Trrip in
  let module R = (val rr : Softcache.Policy.S) in
  let module T = (val tr : Softcache.Policy.S) in
  if cold_oracle then
    T.set_temperature_oracle
      (Some (fun ~lo:_ ~hi:_ -> Softcache.Policy.Cold));
  let next_id = ref 0 in
  let residents = ref [] in
  let apply op =
    match op land 3 with
    | 0 ->
      let id = !next_id in
      incr next_id;
      let b =
        mk_block ~id ~vaddr:(id * 64)
          ~paddr:(0x10000 + (id mod 12 * 320))
          ~words:8
      in
      Softcache.Tcache.register tc b;
      residents := b :: !residents;
      R.on_install b;
      T.on_install b
    | 1 -> (
      match !residents with
      | [] -> ()
      | l ->
        let b = List.nth l (op lsr 2 mod List.length l) in
        R.on_entry b;
        T.on_entry b)
    | 2 -> (
      match !residents with
      | [] -> ()
      | l ->
        let b = List.nth l (op lsr 2 mod List.length l) in
        residents :=
          List.filter
            (fun (x : Softcache.Tcache.block) -> x.id <> b.id)
            l;
        Softcache.Tcache.remove tc b;
        R.on_evict Softcache.Policy.Victim b;
        T.on_evict Softcache.Policy.Victim b)
    | _ ->
      List.iter
        (fun b ->
          Softcache.Tcache.remove tc b;
          R.on_evict Softcache.Policy.Flushed b;
          T.on_evict Softcache.Policy.Flushed b)
        !residents;
      residents := [];
      R.on_flush ();
      T.on_flush ()
  in
  List.for_all
    (fun op ->
      apply op;
      victim_id rr tc = victim_id tr tc
      && List.sort compare (R.resident_ids ())
         = List.sort compare (T.resident_ids ()))
    ops

let prop_trrip_identity =
  QCheck.Test.make ~count:200 ~name:"trrip = rrip without temperature signal"
    QCheck.(list_of_size (Gen.int_range 1 60) (int_bound 4095))
    (fun ops ->
      trrip_rrip_identity ~cold_oracle:false ops
      && trrip_rrip_identity ~cold_oracle:true ops)

(* End-to-end: without an oracle a full trrip run is cycle-identical to
   rrip on real workloads; with a real profile oracle attached (and the
   auditor on) it still computes the right outputs. *)
let test_trrip_runner_identity () =
  List.iter
    (fun wname ->
      let img = (Option.get (Workloads.Registry.find wname)).build () in
      let run eviction =
        let cfg = Softcache.Config.make ~tcache_bytes:2048 ~eviction () in
        let cached, ctrl = Softcache.Runner.cached cfg img in
        (cached.cycles, ctrl.stats.translations, cached.outputs)
      in
      let rc, rt, ro = run Softcache.Config.Rrip in
      let tc_, tt, to_ = run Softcache.Config.Trrip in
      Alcotest.(check int) (wname ^ " cycles identical") rc tc_;
      Alcotest.(check int) (wname ^ " translations identical") rt tt;
      Alcotest.(check (list int)) (wname ^ " outputs identical") ro to_)
    [ "compress95"; "mpeg2enc"; "sensor_modes" ]

let policy_temp = function
  | Profiler.Hot -> Softcache.Policy.Hot
  | Profiler.Warm -> Softcache.Policy.Warm
  | Profiler.Cold -> Softcache.Policy.Cold

let test_trrip_profiled_audited_run () =
  let img = (Option.get (Workloads.Registry.find "mpeg2enc")).build () in
  let native = Softcache.Runner.native img in
  let prof, _ = Profiler.profile img in
  let classify = Profiler.temperature_classifier prof in
  let cfg =
    Softcache.Config.make ~tcache_bytes:4096
      ~eviction:Softcache.Config.Trrip ~audit:true ()
  in
  let audits = ref None in
  let prepare (ctrl : Softcache.Controller.t) =
    Softcache.Controller.set_temperature_oracle ctrl
      (Some (fun ~lo ~hi -> policy_temp (classify ~lo ~hi)));
    audits := Check.Audit.install_if_configured ctrl
  in
  let cached, ctrl = Softcache.Runner.cached_robust ~prepare cfg img in
  Alcotest.(check bool) "halted" true
    (cached.status = Softcache.Runner.Finished Machine.Cpu.Halted);
  Alcotest.(check (list int)) "outputs match native" native.outputs
    cached.outputs;
  (match !audits with
  | Some n -> Alcotest.(check bool) "audits ran" true (!n > 0)
  | None -> Alcotest.fail "auditor was not installed");
  Alcotest.(check bool) "the profile actually evicted something" true
    (ctrl.stats.evicted_victim + ctrl.stats.evicted_collateral > 0)

let test_policy_view_tracks_evictions () =
  List.iter
    (fun (pname, ev) ->
      let tc, p, blocks = synthetic ev in
      let module P = (val p : Softcache.Policy.S) in
      Alcotest.(check (list int))
        (pname ^ " resident after installs")
        [ 0; 1; 2 ]
        (List.sort compare (P.resident_ids ()));
      P.on_evict Softcache.Policy.Victim (List.nth blocks 1);
      Alcotest.(check (list int))
        (pname ^ " resident after evict")
        [ 0; 2 ]
        (List.sort compare (P.resident_ids ()));
      ignore tc)
    Softcache.Config.eviction_table

(* ------------------------------------------------------------------ *)
(* Pinned-only tcache: when pinned blocks crowd out every placement,
   each policy must raise Tcache_too_small — not spin in the allocator
   (lru/rrip have no victim to offer: every candidate is pinned). *)

let prog_funcs n =
  let b = Isa.Builder.create "pinfarm" in
  let labs = List.init n (fun _ -> Isa.Builder.new_label b) in
  let main = Isa.Builder.new_label b in
  Isa.Builder.entry b main;
  List.iteri
    (fun i l ->
      Isa.Builder.func b (Printf.sprintf "f%d" i) l (fun () ->
          for k = 1 to 40 do
            Isa.Builder.ins b
              (Isa.Instr.Alui (Add, reg 2, reg 2, (i + k) land 7))
          done;
          Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra)))
    labs;
  Isa.Builder.func b "main" main (fun () ->
      List.iter (fun l -> Isa.Builder.jal b l) labs;
      Isa.Builder.ins b (Isa.Instr.Out (reg 2));
      Isa.Builder.ins b Isa.Instr.Halt);
  Isa.Builder.build b

let test_pinned_only_tcache () =
  let img = prog_funcs 10 in
  let fvaddrs =
    List.filter_map
      (fun (s : Isa.Image.symbol) ->
        if String.length s.sym_name > 1 && s.sym_name.[0] = 'f' then
          Some s.sym_addr
        else None)
      img.symbols
  in
  Alcotest.(check int) "ten pin candidates" 10 (List.length fvaddrs);
  List.iter
    (fun (pname, eviction) ->
      let cfg =
        Softcache.Config.make ~tcache_bytes:1024
          ~chunking:Softcache.Config.Procedure ~eviction ()
      in
      let ctrl = Softcache.Controller.create cfg img in
      match List.iter (Softcache.Controller.pin ctrl) fvaddrs with
      | () ->
        Alcotest.fail
          (pname ^ ": tcache held every pin — grow the program or shrink it")
      | exception Softcache.Controller.Tcache_too_small ->
        (* the refusal must come from a genuinely pinned-solid cache *)
        let blocks = Softcache.Tcache.blocks ctrl.tc in
        Alcotest.(check bool) (pname ^ " pinned some blocks first") true
          (List.length blocks >= 2);
        List.iter
          (fun (b : Softcache.Tcache.block) ->
            Alcotest.(check bool)
              (pname ^ " every resident is pinned")
              true
              (Softcache.Tcache.is_pinned ctrl.tc b.id))
          blocks)
    Softcache.Config.eviction_table

(* ------------------------------------------------------------------ *)
(* Eviction of the block containing the current pc's fall-through
   target: the patched (or pending) fall-through exit must revert to a
   trap and re-translate, never branch into reclaimed memory. *)

let prog_fib n =
  let b = Isa.Builder.create "fib" in
  let fib = Isa.Builder.new_label b in
  let base = Isa.Builder.new_label b in
  let main = Isa.Builder.new_label b in
  Isa.Builder.entry b main;
  Isa.Builder.func b "fib" fib (fun () ->
      Isa.Builder.li b (reg 3) 2;
      Isa.Builder.br b Lt (reg 1) (reg 3) base;
      Isa.Builder.ins b (Isa.Instr.Alui (Add, Isa.Reg.sp, Isa.Reg.sp, -12));
      Isa.Builder.ins b (Isa.Instr.St (Isa.Reg.ra, Isa.Reg.sp, 0));
      Isa.Builder.ins b (Isa.Instr.St (reg 1, Isa.Reg.sp, 4));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 1, reg 1, -1));
      Isa.Builder.jal b fib;
      Isa.Builder.ins b (Isa.Instr.St (reg 2, Isa.Reg.sp, 8));
      Isa.Builder.ins b (Isa.Instr.Ld (reg 1, Isa.Reg.sp, 4));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 1, reg 1, -2));
      Isa.Builder.jal b fib;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 3, Isa.Reg.sp, 8));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 2, reg 3));
      Isa.Builder.ins b (Isa.Instr.Ld (Isa.Reg.ra, Isa.Reg.sp, 0));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, Isa.Reg.sp, Isa.Reg.sp, 12));
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra);
      Isa.Builder.here b base;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 1, Isa.Reg.zero));
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));
  Isa.Builder.func b "main" main (fun () ->
      Isa.Builder.li b (reg 1) n;
      Isa.Builder.jal b fib;
      Isa.Builder.ins b (Isa.Instr.Out (reg 2));
      Isa.Builder.ins b Isa.Instr.Halt);
  Isa.Builder.build b

let test_fallthrough_target_eviction () =
  let img = prog_fib 12 in
  let native = Softcache.Runner.native img in
  List.iter
    (fun (pname, eviction) ->
      let cfg =
        Softcache.Config.make ~tcache_bytes:1024
          ~chunking:Softcache.Config.Basic_block ~eviction ()
      in
      let ctrl = Softcache.Controller.create cfg img in
      ignore (Check.Audit.install ctrl);
      let evicted_a_target = ref false in
      let rec go budget =
        match Softcache.Controller.run ~fuel:400 ctrl with
        | Machine.Cpu.Halted -> ()
        | Machine.Cpu.Out_of_fuel ->
          if budget = 0 then Alcotest.fail (pname ^ ": did not halt");
          (* evict whatever chunk the current block falls through into *)
          let pc = ctrl.cpu.pc in
          (match
             List.find_opt
               (fun (b : Softcache.Tcache.block) ->
                 pc >= b.paddr && pc < b.paddr + (4 * b.words))
               (Softcache.Tcache.blocks ctrl.tc)
           with
          | Some b ->
            let fall = b.vaddr + (4 * b.orig_words) in
            if Softcache.Controller.resident ctrl fall then begin
              evicted_a_target := true;
              Softcache.Controller.invalidate ctrl ~lo:fall ~hi:(fall + 4)
            end
          | None -> ());
          go (budget - 1)
      in
      go 200;
      Alcotest.(check bool)
        (pname ^ " actually evicted a fall-through target")
        true !evicted_a_target;
      Alcotest.(check (list int))
        (pname ^ " outputs match native")
        native.outputs
        (Machine.Cpu.outputs ctrl.cpu))
    Softcache.Config.eviction_table

(* ------------------------------------------------------------------ *)
(* Alloc-guard exhaustion: if processing the evictions keeps growing
   the persistent stub area over the fresh placement, the miss path
   must fail with a diagnosable exception, not re-allocate forever. *)

let test_alloc_guard_exhausted () =
  (* ~1.8 KiB of straight-line functions through a 512-byte tcache:
     the region fills and every later call must evict *)
  let img = prog_funcs 10 in
  let cfg =
    Softcache.Config.make ~tcache_bytes:512
      ~chunking:Softcache.Config.Basic_block ()
  in
  let ctrl = Softcache.Controller.create cfg img in
  (match Softcache.Controller.run ~fuel:200 ctrl with
  | Machine.Cpu.Out_of_fuel -> ()
  | Machine.Cpu.Halted -> Alcotest.fail "program finished before thrashing");
  Alcotest.(check bool) "warmup filled the region" true
    (ctrl.stats.evicted_victim + ctrl.stats.evicted_collateral > 0
    || Softcache.Tcache.blocks ctrl.tc <> []);
  ctrl.alloc_guard <- 1;
  (* emulate pathological scrub growth: every eviction batch grows the
     persistent stub area down to just above the region base, so the
     retried placement can never clear it *)
  ctrl.on_event <-
    Some
      (function
      | Softcache.Controller.Evicted _ ->
        let tc = ctrl.tc in
        let room =
          (Softcache.Tcache.persist_base tc - Softcache.Tcache.base tc) / 4
        in
        if room > 1 then
          ignore (Softcache.Tcache.alloc_persistent tc ~words:(room - 1))
      | _ -> ());
  match Softcache.Controller.run ~fuel:500_000 ctrl with
  | _ -> Alcotest.fail "expected Alloc_guard_exhausted"
  | exception Softcache.Controller.Alloc_guard_exhausted
      { loops; base; persist_base; top } ->
    Alcotest.(check int) "reports the configured guard" 1 loops;
    Alcotest.(check bool) "region bounds are coherent" true
      (base <= persist_base && persist_base <= top);
    (* the payload should show the stub area having swallowed the
       region — that is the whole point of carrying both bounds *)
    Alcotest.(check bool) "stub area swallowed the region" true
      (persist_base - base <= 64)

let () =
  Alcotest.run "policy"
    [
      ( "golden",
        [
          Alcotest.test_case "fifo/flush cycle-identical to pre-refactor"
            `Slow test_golden_cycle_identity;
        ] );
      ( "units",
        [
          Alcotest.test_case "registry names and kinds" `Quick
            test_registry_names;
          Alcotest.test_case "reason names match trace schema" `Quick
            test_reason_names_match_trace;
          Alcotest.test_case "fifo/flush never volunteer a victim" `Quick
            test_fifo_never_volunteers;
          Alcotest.test_case "lru defers to the sweep when cold" `Quick
            test_lru_defers_to_sweep_when_cold;
          Alcotest.test_case "lru overrides sweep for fresh blocks" `Quick
            test_lru_overrides_sweep_for_fresh_block;
          Alcotest.test_case "rrip promotes on entry" `Quick
            test_rrip_promotes_on_entry;
          Alcotest.test_case "pick_min ties break on block id" `Quick
            test_pick_min_tie_breaks_on_id;
          Alcotest.test_case "sweep candidate ties break on block id" `Quick
            test_sweep_candidate_tie_breaks_on_id;
          Alcotest.test_case "resident view tracks evictions" `Quick
            test_policy_view_tracks_evictions;
        ] );
      ( "trrip",
        [
          Alcotest.test_case "no oracle acts like rrip" `Quick
            test_trrip_no_oracle_acts_like_rrip;
          Alcotest.test_case "hot prior protects unentered blocks" `Quick
            test_trrip_hot_prior_protects_unentered;
          Alcotest.test_case "constant-cold oracle is rrip" `Quick
            test_trrip_constant_cold_oracle_is_rrip;
          QCheck_alcotest.to_alcotest prop_trrip_identity;
          Alcotest.test_case "runner identity without oracle" `Slow
            test_trrip_runner_identity;
          Alcotest.test_case "profiled audited run" `Slow
            test_trrip_profiled_audited_run;
        ] );
      ( "edges",
        [
          Alcotest.test_case "pinned-only tcache fails cleanly" `Quick
            test_pinned_only_tcache;
          Alcotest.test_case "fall-through target eviction" `Quick
            test_fallthrough_target_eviction;
          Alcotest.test_case "alloc guard exhaustion" `Quick
            test_alloc_guard_exhausted;
        ] );
    ]
