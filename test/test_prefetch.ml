(* Prefetch/batching tests: transfer_batch framing and slicing, the CC
   staging buffer (bound, lazy install, install-time CRC, invalidation),
   the audit's staging invariants, and the prefetch-on/off lockstep. *)

let reg = Isa.Reg.r

(* Recursive Fibonacci — deep stack, cross-chunk calls, enough distinct
   chunks for successors to predict. *)
let prog_fib n =
  let b = Isa.Builder.create "fib" in
  let fib = Isa.Builder.new_label b in
  let base = Isa.Builder.new_label b in
  let main = Isa.Builder.new_label b in
  Isa.Builder.entry b main;
  Isa.Builder.func b "fib" fib (fun () ->
      Isa.Builder.li b (reg 3) 2;
      Isa.Builder.br b Lt (reg 1) (reg 3) base;
      Isa.Builder.ins b (Isa.Instr.Alui (Add, Isa.Reg.sp, Isa.Reg.sp, -12));
      Isa.Builder.ins b (Isa.Instr.St (Isa.Reg.ra, Isa.Reg.sp, 0));
      Isa.Builder.ins b (Isa.Instr.St (reg 1, Isa.Reg.sp, 4));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 1, reg 1, -1));
      Isa.Builder.jal b fib;
      Isa.Builder.ins b (Isa.Instr.St (reg 2, Isa.Reg.sp, 8));
      Isa.Builder.ins b (Isa.Instr.Ld (reg 1, Isa.Reg.sp, 4));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 1, reg 1, -2));
      Isa.Builder.jal b fib;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 3, Isa.Reg.sp, 8));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 2, reg 3));
      Isa.Builder.ins b (Isa.Instr.Ld (Isa.Reg.ra, Isa.Reg.sp, 0));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, Isa.Reg.sp, Isa.Reg.sp, 12));
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra);
      Isa.Builder.here b base;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 1, Isa.Reg.zero));
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));
  Isa.Builder.func b "main" main (fun () ->
      Isa.Builder.li b (reg 1) n;
      Isa.Builder.jal b fib;
      Isa.Builder.ins b (Isa.Instr.Out (reg 2));
      Isa.Builder.ins b Isa.Instr.Halt);
  Isa.Builder.build b

let ethernet_cfg ?(tcache_bytes = 4096) ?(prefetch = 0) ?(staging = 8) () =
  Softcache.Config.make ~tcache_bytes
    ~net:(Netmodel.ethernet_10mbps ())
    ~prefetch_degree:prefetch ~staging_chunks:staging ()

(* the staging-buffer conservation law: everything issued was either
   installed, discarded, CRC-rejected, or is still parked *)
let check_conservation (ctrl : Softcache.Controller.t) =
  let s = ctrl.stats in
  Alcotest.(check int) "issued = installs + wasted + crc + staged"
    s.prefetch_issued
    (s.prefetch_installs + s.prefetch_wasted + s.prefetch_crc_failures
    + Hashtbl.length ctrl.staging)

(* ------------------------------------------------------------------ *)
(* transfer_batch framing *)

let test_batch_slicing () =
  let n1 = Netmodel.ethernet_10mbps () in
  let n2 = Netmodel.ethernet_10mbps () in
  let seg len fill = Bytes.make len fill in
  let payloads = [ seg 8 'a'; seg 12 'b'; seg 20 'c' ] in
  match Netmodel.transfer_batch n1 ~payloads with
  | Error _ -> Alcotest.fail "fault-free batch dropped"
  | Ok (cost, segments) ->
    Alcotest.(check (list bytes)) "segments intact" payloads segments;
    Alcotest.(check int) "one message for the whole frame" 1
      (Netmodel.messages n1);
    Alcotest.(check int) "payload accounted once" 40
      (Netmodel.payload_bytes n1);
    (* latency and per-message overhead are paid once, as if one 40-byte
       request had been made *)
    Alcotest.(check int) "cost = single 40-byte request"
      (Netmodel.request n2 ~payload_bytes:40)
      cost

let test_batch_single_equals_transfer () =
  (* a single-segment batch must be bit- and draw-identical to a plain
     transfer, so degree-0 runs are unchanged by the batching layer *)
  let mk () =
    Netmodel.local
      ~faults:
        (Netmodel.Faults.make ~seed:13 ~drop:0.3 ~corrupt:0.3 ~duplicate:0.3
           ~delay_spike:0.3 ())
      ()
  in
  let n1 = mk () and n2 = mk () in
  let payload = Bytes.of_string "single-segment-frame" in
  for i = 1 to 100 do
    let a = Netmodel.transfer n1 ~payload in
    let b = Netmodel.transfer_batch n2 ~payloads:[ payload ] in
    match (a, b) with
    | Ok (ca, ba), Ok (cb, [ bb ]) ->
      Alcotest.(check int) (Printf.sprintf "cost %d" i) ca cb;
      Alcotest.(check bytes) (Printf.sprintf "bytes %d" i) ba bb
    | Error (`Dropped ca), Error (`Dropped cb) ->
      Alcotest.(check int) (Printf.sprintf "drop cost %d" i) ca cb
    | _ -> Alcotest.failf "outcome diverged at message %d" i
  done;
  Alcotest.(check int) "same messages" (Netmodel.messages n1)
    (Netmodel.messages n2);
  Alcotest.(check int) "same drops" (Netmodel.drops n1) (Netmodel.drops n2);
  Alcotest.(check int) "same corruptions" (Netmodel.corruptions n1)
    (Netmodel.corruptions n2)

let test_batch_fault_hits_whole_frame () =
  let net =
    Netmodel.local ~faults:(Netmodel.Faults.make ~seed:1 ~drop:1.0 ()) ()
  in
  (match
     Netmodel.transfer_batch net
       ~payloads:[ Bytes.create 8; Bytes.create 8; Bytes.create 8 ]
   with
  | Error (`Dropped _) -> ()
  | Ok _ -> Alcotest.fail "drop=1 delivered a batch");
  Alcotest.(check int) "one drop for the whole frame" 1 (Netmodel.drops net);
  Alcotest.(check int) "one message for the whole frame" 1
    (Netmodel.messages net)

(* ------------------------------------------------------------------ *)
(* End-to-end prefetching *)

let test_prefetch_reduces_messages () =
  let img = prog_fib 12 in
  let native = Softcache.Runner.native img in
  let run prefetch =
    let cfg = ethernet_cfg ~prefetch () in
    let cached, ctrl = Softcache.Runner.cached cfg img in
    Alcotest.(check (list int)) "outputs match native" native.outputs
      cached.outputs;
    (cached, ctrl)
  in
  let off, ctrl_off = run 0 in
  let on, ctrl_on = run 2 in
  Alcotest.(check int) "prefetch off issues nothing" 0
    ctrl_off.stats.prefetch_issued;
  Alcotest.(check bool) "staged chunks actually installed" true
    (ctrl_on.stats.prefetch_installs > 0);
  Alcotest.(check bool) "fewer MC<->CC messages" true
    (Netmodel.messages ctrl_on.cfg.net < Netmodel.messages ctrl_off.cfg.net);
  Alcotest.(check bool) "fewer total cycles" true (on.cycles < off.cycles);
  Alcotest.(check bool) "batched frames counted" true
    (ctrl_on.stats.batches > 0
    && ctrl_on.stats.max_batch_chunks >= 2
    && ctrl_on.stats.batch_chunks > ctrl_on.stats.batches);
  check_conservation ctrl_on

let test_staging_bound_and_audit () =
  (* a tiny staging buffer under a large degree: the bound holds after
     every controller operation (the installed auditor checks the
     staging section on each event) and discards are accounted *)
  let img = prog_fib 12 in
  let cfg = ethernet_cfg ~tcache_bytes:2048 ~prefetch:8 ~staging:1 () in
  let ctrl = Softcache.Controller.create cfg img in
  let audits = Check.Audit.install ctrl in
  let outcome = Softcache.Controller.run ctrl in
  Alcotest.(check bool) "halted" true (outcome = Machine.Cpu.Halted);
  Alcotest.(check bool) "auditor ran" true (!audits > 0);
  Alcotest.(check bool) "bound respected at end" true
    (Hashtbl.length ctrl.staging <= 1);
  Alcotest.(check bool) "FIFO discards happened" true
    (ctrl.stats.prefetch_wasted > 0);
  check_conservation ctrl

let test_staged_good_crc_installs_without_wire () =
  let img = prog_fib 10 in
  let cfg = ethernet_cfg () in
  let ctrl = Softcache.Controller.create cfg img in
  Softcache.Controller.start ctrl;
  let fib =
    (List.find (fun (s : Isa.Image.symbol) -> s.sym_name = "fib") img.symbols)
      .sym_addr
  in
  (* hand-stage the genuine chunk body, as the MC would ship it *)
  let c = Softcache.Chunker.chunk_at img cfg.chunking fib in
  let words = Array.map Isa.Encode.encode c.instrs in
  let st_bytes = Bytes.create (4 * Array.length words) in
  Array.iteri
    (fun i w -> Bytes.set_int32_le st_bytes (4 * i) (Int32.of_int w))
    words;
  Hashtbl.replace ctrl.staging fib
    { Softcache.Controller.st_bytes; st_crc = Softcache.Crc32.bytes st_bytes };
  Queue.add fib ctrl.staging_order;
  let msgs0 = Netmodel.messages cfg.net in
  ignore (Softcache.Controller.ensure_resident ctrl fib);
  Alcotest.(check int) "no wire traffic for a staged install" msgs0
    (Netmodel.messages cfg.net);
  Alcotest.(check int) "counted as install" 1 ctrl.stats.prefetch_installs;
  Alcotest.(check bool) "resident" true
    (Softcache.Controller.resident ctrl fib);
  Alcotest.(check bool) "consumed from staging" false
    (Hashtbl.mem ctrl.staging fib)

let test_staged_bad_crc_falls_back_to_wire () =
  let img = prog_fib 10 in
  let cfg = ethernet_cfg () in
  let ctrl = Softcache.Controller.create cfg img in
  Softcache.Controller.start ctrl;
  let fib =
    (List.find (fun (s : Isa.Image.symbol) -> s.sym_name = "fib") img.symbols)
      .sym_addr
  in
  let c = Softcache.Chunker.chunk_at img cfg.chunking fib in
  let words = Array.map Isa.Encode.encode c.instrs in
  let st_bytes = Bytes.create (4 * Array.length words) in
  Array.iteri
    (fun i w -> Bytes.set_int32_le st_bytes (4 * i) (Int32.of_int w))
    words;
  let st_crc = Softcache.Crc32.bytes st_bytes in
  (* corrupt one byte after the CRC was stamped *)
  Bytes.set st_bytes 2 (Char.chr (Char.code (Bytes.get st_bytes 2) lxor 0x40));
  Hashtbl.replace ctrl.staging fib { Softcache.Controller.st_bytes; st_crc };
  Queue.add fib ctrl.staging_order;
  let msgs0 = Netmodel.messages cfg.net in
  ignore (Softcache.Controller.ensure_resident ctrl fib);
  Alcotest.(check int) "CRC reject counted" 1
    ctrl.stats.prefetch_crc_failures;
  Alcotest.(check int) "not counted as install" 0
    ctrl.stats.prefetch_installs;
  Alcotest.(check bool) "fell back to the wire" true
    (Netmodel.messages cfg.net > msgs0);
  Alcotest.(check bool) "still becomes resident" true
    (Softcache.Controller.resident ctrl fib)

let test_invalidate_drops_staged () =
  let img = prog_fib 10 in
  let cfg = ethernet_cfg () in
  let ctrl = Softcache.Controller.create cfg img in
  Softcache.Controller.start ctrl;
  let fib =
    (List.find (fun (s : Isa.Image.symbol) -> s.sym_name = "fib") img.symbols)
      .sym_addr
  in
  let c = Softcache.Chunker.chunk_at img cfg.chunking fib in
  let words = Array.map Isa.Encode.encode c.instrs in
  let st_bytes = Bytes.create (4 * Array.length words) in
  Array.iteri
    (fun i w -> Bytes.set_int32_le st_bytes (4 * i) (Int32.of_int w))
    words;
  Hashtbl.replace ctrl.staging fib
    { Softcache.Controller.st_bytes; st_crc = Softcache.Crc32.bytes st_bytes };
  Queue.add fib ctrl.staging_order;
  let wasted0 = ctrl.stats.prefetch_wasted in
  (* invalidation over the chunk's source range must also drop the
     staged copy — it is about to go stale *)
  Softcache.Controller.invalidate ctrl ~lo:fib ~hi:(fib + 4);
  Alcotest.(check bool) "staged copy dropped" false
    (Hashtbl.mem ctrl.staging fib);
  Alcotest.(check int) "accounted as wasted" (wasted0 + 1)
    ctrl.stats.prefetch_wasted

let test_audit_staging_violations () =
  let img = prog_fib 10 in
  let cfg = ethernet_cfg ~staging:1 () in
  let ctrl = Softcache.Controller.create cfg img in
  Softcache.Controller.start ctrl;
  let staged_of v =
    let c = Softcache.Chunker.chunk_at img cfg.chunking v in
    let words = Array.map Isa.Encode.encode c.instrs in
    let st_bytes = Bytes.create (4 * Array.length words) in
    Array.iteri
      (fun i w -> Bytes.set_int32_le st_bytes (4 * i) (Int32.of_int w))
      words;
    { Softcache.Controller.st_bytes;
      st_crc = Softcache.Crc32.bytes st_bytes }
  in
  let fib =
    (List.find (fun (s : Isa.Image.symbol) -> s.sym_name = "fib") img.symbols)
      .sym_addr
  in
  Alcotest.(check (list string)) "clean to start" []
    (List.map
       (fun (v : Check.Audit.violation) -> v.invariant)
       (Check.Audit.run ctrl));
  (* overfill past the configured bound, behind the controller's back *)
  Hashtbl.replace ctrl.staging fib (staged_of fib);
  Hashtbl.replace ctrl.staging (fib + 4) (staged_of (fib + 4));
  let vs = Check.Audit.run ctrl in
  Alcotest.(check bool) "overflow flagged" true
    (List.exists
       (fun (v : Check.Audit.violation) -> v.invariant = "staging")
       vs);
  Hashtbl.remove ctrl.staging (fib + 4);
  Hashtbl.remove ctrl.staging fib;
  (* a staged vaddr aliasing a resident block is also a violation *)
  ignore (Softcache.Controller.ensure_resident ctrl fib);
  Hashtbl.replace ctrl.staging fib (staged_of fib);
  let vs = Check.Audit.run ctrl in
  Alcotest.(check bool) "resident alias flagged" true
    (List.exists
       (fun (v : Check.Audit.violation) -> v.invariant = "staging")
       vs)

(* ------------------------------------------------------------------ *)
(* Architectural invisibility *)

let test_lockstep_prefetch_equivalent () =
  let img = prog_fib 11 in
  let mk_cfg () = ethernet_cfg ~prefetch:3 () in
  match Check.Lockstep.prefetch ~audit:true mk_cfg img with
  | Check.Lockstep.Engines_equivalent { steps } ->
    Alcotest.(check bool) "stepped" true (steps > 0)
  | v ->
    Alcotest.failf "prefetch lockstep: %a" Check.Lockstep.pp_engine_verdict v

(* the robustness property survives prefetching: any fault schedule,
   any degree, any staging bound — native-equivalent or cleanly
   unavailable, with the staging conservation law intact *)
let test_prefetch_fault_robustness =
  let print (seed, knobs, degree, staging) =
    Printf.sprintf "seed=%d faults=%d degree=%d staging=%d" seed knobs degree
      staging
  in
  QCheck.Test.make ~count:40
    ~name:"faulted prefetch runs: native-equivalent or cleanly unavailable"
    QCheck.(
      make ~print
        Gen.(
          quad (int_range 1 10_000) (int_bound 80) (int_range 1 4)
            (int_range 1 8)))
    (fun (seed, knobs, degree, staging) ->
      let img = prog_fib 11 in
      let native = Softcache.Runner.native img in
      let drop = float_of_int (knobs mod 5) /. 20.0 in
      let corrupt = float_of_int (knobs / 5 mod 4) /. 20.0 in
      let duplicate = float_of_int (knobs / 20 mod 4) /. 20.0 in
      let faults =
        Netmodel.Faults.make ~seed ~drop ~corrupt ~duplicate
          ~delay_spike:0.05 ()
      in
      let cfg =
        Softcache.Config.make ~tcache_bytes:2048
          ~net:(Netmodel.local ~faults ())
          ~prefetch_degree:degree ~staging_chunks:staging ()
      in
      let cached, ctrl = Softcache.Runner.cached_robust cfg img in
      let s = ctrl.stats in
      let conserved =
        s.prefetch_issued
        = s.prefetch_installs + s.prefetch_wasted + s.prefetch_crc_failures
          + Hashtbl.length ctrl.staging
      in
      conserved
      &&
      match cached.status with
      | Softcache.Runner.Finished Machine.Cpu.Halted ->
        cached.outputs = native.outputs
      | Softcache.Runner.Finished Machine.Cpu.Out_of_fuel -> false
      | Softcache.Runner.Unavailable _ -> true)

let () =
  Alcotest.run "prefetch"
    [
      ( "batch",
        [
          Alcotest.test_case "frame slicing + single accounting" `Quick
            test_batch_slicing;
          Alcotest.test_case "single-segment batch = transfer" `Quick
            test_batch_single_equals_transfer;
          Alcotest.test_case "fault hits the whole frame" `Quick
            test_batch_fault_hits_whole_frame;
        ] );
      ( "staging",
        [
          Alcotest.test_case "prefetch reduces messages and cycles" `Quick
            test_prefetch_reduces_messages;
          Alcotest.test_case "staging bound + audit" `Quick
            test_staging_bound_and_audit;
          Alcotest.test_case "good CRC installs without wire" `Quick
            test_staged_good_crc_installs_without_wire;
          Alcotest.test_case "bad CRC falls back to wire" `Quick
            test_staged_bad_crc_falls_back_to_wire;
          Alcotest.test_case "invalidate drops staged copies" `Quick
            test_invalidate_drops_staged;
          Alcotest.test_case "audit flags staging violations" `Quick
            test_audit_staging_violations;
        ] );
      ( "lockstep",
        [
          Alcotest.test_case "prefetch is architecturally invisible" `Quick
            test_lockstep_prefetch_equivalent;
          QCheck_alcotest.to_alcotest test_prefetch_fault_robustness;
        ] );
    ]
