(* Sharded multi-hart CC tests: 1-hart cycle identity against the solo
   controller across the registry, per-hart output equivalence to
   native, fill coalescing vs independent solo caches, and the qcheck
   property — random interleaving schedules x eviction policies x
   flush schedules stay audit-clean and replay byte-identically. *)

let compress_img =
  lazy ((Option.get (Workloads.Registry.find "compress95")).build ())

(* ------------------------------------------------------------------ *)
(* 1-hart cycle identity: the sharded engine with a lone hart IS the
   solo controller, step for step, on every registry workload *)

let test_lockstep_registry () =
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      let mk () =
        Softcache.Config.make ~tcache_bytes:4096
          ~chunking:Softcache.Config.Basic_block ()
      in
      match Check.Lockstep.shards ~fuel:400_000 mk (e.build ()) with
      | Check.Lockstep.Engines_equivalent { steps }
      | Check.Lockstep.Engines_out_of_fuel { steps } ->
        Alcotest.(check bool)
          (Printf.sprintf "%s compared steps" e.name)
          true (steps > 0)
      | v ->
        Alcotest.failf "%s: 1-hart sharded diverged from solo: %a" e.name
          Check.Lockstep.pp_engine_verdict v)
    Workloads.Registry.all

(* ------------------------------------------------------------------ *)
(* multi-hart correctness: every hart's architectural outputs equal the
   native run's, the per-hart cycle ledgers conserve, and the full
   shard audit is clean at the halt point *)

let test_outputs_match_native () =
  let img = Lazy.force compress_img in
  let native = Machine.Cpu.of_image img in
  ignore (Machine.Cpu.run ~fuel:3_000_000 native);
  let nouts = Machine.Cpu.outputs native in
  let cfg =
    Softcache.Config.make ~tcache_bytes:8192
      ~chunking:Softcache.Config.Basic_block ~harts:4 ~shards:2 ~sched_seed:3
      ()
  in
  let ctrl = Softcache.Controller.create cfg img in
  let sh = Softcache.Shard.attach ctrl in
  (match Softcache.Shard.run ~fuel:3_000_000 sh with
  | Machine.Cpu.Halted -> ()
  | Machine.Cpu.Out_of_fuel -> Alcotest.fail "4-hart compress95 out of fuel");
  List.iter
    (fun (h : Softcache.Shard.hart) ->
      Alcotest.(check (list int))
        (Printf.sprintf "hart %d outputs" h.h_id)
        nouts
        (Machine.Cpu.outputs h.h_cpu);
      Alcotest.(check int)
        (Printf.sprintf "hart %d ledger conserves" h.h_id)
        h.h_cpu.cycles
        (h.h_run + h.h_wait_fill + h.h_wait_mc))
    (Softcache.Shard.harts sh);
  match Check.Audit.shards sh with
  | [] -> ()
  | v :: _ ->
    Alcotest.failf "shard audit violation: %a" Check.Audit.pp_violation v

(* ------------------------------------------------------------------ *)
(* coalescing: N harts over one shared tcache put fewer messages on the
   wire than N independent solo caches running the same workload *)

let test_coalescing_cuts_wire () =
  let img = Lazy.force compress_img in
  let n = 4 in
  let shard_net = Netmodel.ethernet_10mbps () in
  let cfg =
    Softcache.Config.make ~tcache_bytes:8192
      ~chunking:Softcache.Config.Basic_block ~net:shard_net ~harts:n ()
  in
  let ctrl = Softcache.Controller.create cfg img in
  let sh = Softcache.Shard.attach ctrl in
  ignore (Softcache.Shard.run ~fuel:400_000 sh);
  let shared = Netmodel.messages shard_net in
  Alcotest.(check bool) "some joins happened" true
    (ctrl.Softcache.Controller.stats.Softcache.Stats.fills_coalesced > 0);
  let solo_net = Netmodel.ethernet_10mbps () in
  let solo_cfg =
    Softcache.Config.make ~tcache_bytes:8192
      ~chunking:Softcache.Config.Basic_block ~net:solo_net ()
  in
  let solo = Softcache.Controller.create solo_cfg img in
  ignore (Softcache.Controller.run ~fuel:400_000 solo);
  let solo_msgs = n * Netmodel.messages solo_net in
  Alcotest.(check bool)
    (Printf.sprintf "shared %d msgs < %dx solo %d msgs" shared n solo_msgs)
    true (shared < solo_msgs)

(* ------------------------------------------------------------------ *)
(* qcheck: random interleaving schedules x eviction policies x flush
   schedules. Every segmented run must stay audit-clean at each
   quiescent point, and the whole run must replay byte-identically
   from the same seed (schedule determinism). *)

let eviction_policies =
  List.map snd Softcache.Config.eviction_table

(* One segmented run: three fuel segments with an optional external
   flush after each (per [flush_mask] bit), auditing at every quiescent
   point. Returns (violations, fingerprint). *)
let segmented_run ~seed ~eviction ~harts ~shards ~flush_mask img =
  let cfg =
    Softcache.Config.make ~tcache_bytes:3072
      ~chunking:Softcache.Config.Basic_block ~eviction ~harts ~shards
      ~sched_seed:seed ()
  in
  let ctrl = Softcache.Controller.create cfg img in
  let sh = Softcache.Shard.attach ctrl in
  let viols = ref [] in
  let seg = 15_000 in
  for k = 1 to 3 do
    ignore (Softcache.Shard.run ~fuel:(k * seg) sh);
    if (flush_mask lsr (k - 1)) land 1 = 1 then Softcache.Controller.flush ctrl;
    viols := !viols @ Check.Audit.shards sh
  done;
  let b = Buffer.create 256 in
  List.iter
    (fun (h : Softcache.Shard.hart) ->
      Buffer.add_string b
        (Printf.sprintf "h%d:c=%d r=%d pc=%x run=%d wf=%d wm=%d f=%d j=%d;"
           h.h_id h.h_cpu.cycles h.h_cpu.retired h.h_cpu.pc h.h_run
           h.h_wait_fill h.h_wait_mc h.h_fills h.h_joins))
    (Softcache.Shard.harts sh);
  Buffer.add_string b
    (Format.asprintf "mc=%d span=%d %a" (Softcache.Shard.mc_free_at sh)
       (Softcache.Shard.makespan sh)
       Softcache.Stats.pp ctrl.Softcache.Controller.stats);
  (!viols, Buffer.contents b)

let prop_schedules_audit_clean_deterministic =
  QCheck.Test.make ~count:200
    ~name:"random schedule x policy x flushes: audit-clean, replays identically"
    QCheck.(
      quad (int_bound 9999)
        (int_bound (List.length eviction_policies - 1))
        (int_range 2 4) (int_bound 7))
    (fun (seed, pol, harts, flush_mask) ->
      let img = Lazy.force compress_img in
      let eviction = List.nth eviction_policies pol in
      let shards = 1 + (seed land 1) in
      let viols, fp1 =
        segmented_run ~seed ~eviction ~harts ~shards ~flush_mask img
      in
      let viols2, fp2 =
        segmented_run ~seed ~eviction ~harts ~shards ~flush_mask img
      in
      if viols <> [] then
        QCheck.Test.fail_reportf "audit violation: %a"
          Check.Audit.pp_violation (List.hd viols);
      if viols2 <> [] then
        QCheck.Test.fail_reportf "replay audit violation: %a"
          Check.Audit.pp_violation (List.hd viols2);
      if fp1 <> fp2 then
        QCheck.Test.fail_reportf "replay diverged:@.%s@.vs@.%s" fp1 fp2;
      true)

let () =
  Alcotest.run "shard"
    [
      ( "lockstep",
        [
          Alcotest.test_case "1-hart sharded = solo, registry-wide" `Slow
            test_lockstep_registry;
        ] );
      ( "multi-hart",
        [
          Alcotest.test_case "per-hart outputs = native" `Slow
            test_outputs_match_native;
          Alcotest.test_case "coalescing cuts wire messages" `Quick
            test_coalescing_cuts_wire;
        ] );
      ( "schedules",
        [
          QCheck_alcotest.to_alcotest
            prop_schedules_audit_clean_deterministic;
        ] );
    ]
