(* Sizing-estimator tests: the dominant-block analytic model that
   predicts the Fig. 7 miss-rate knee from a static CFG walk plus a
   profiling pre-run. Covers the structure of the estimate (walk
   coverage, hottest-first ranking, dominant-set share), monotonicity
   in the two knobs, degenerate profiles and argument validation. The
   predicted-vs-measured accuracy gate runs in the bench ([sizing]
   experiment), not here. *)

let ladder = [ 256; 512; 1024; 2048; 4096; 8192; 16384; 32768; 65536 ]
let build name = (Option.get (Workloads.Registry.find name)).build ()

let compress =
  lazy
    (let img = build "compress95" in
     let prof, _ = Profiler.profile img in
     (img, prof))

let estimate ?threshold ?headroom ?(sizes = ladder) img prof =
  Softcache.Sizing.estimate ?threshold ?headroom ~image:img
    ~chunking:Softcache.Config.Basic_block
    ~samples_in:(fun ~lo ~hi -> Profiler.samples_in prof ~lo ~hi)
    ~sizes ()

let dom_prefix (e : Softcache.Sizing.estimate) =
  List.filteri (fun i _ -> i < e.dominant_chunks) e.chunks

let test_estimate_structure () =
  let img, prof = Lazy.force compress in
  let e = estimate img prof in
  Alcotest.(check bool) "walk found chunks" true (e.chunks_walked > 0);
  Alcotest.(check int) "chunk list is the walk" e.chunks_walked
    (List.length e.chunks);
  Alcotest.(check bool) "dominant set nonempty" true (e.dominant_chunks > 0);
  Alcotest.(check bool) "dominant <= walked" true
    (e.dominant_chunks <= e.chunks_walked);
  let rec hottest_first = function
    | (a : Softcache.Sizing.chunk_info) :: (b :: _ as rest) ->
      a.ci_samples >= b.ci_samples && hottest_first rest
    | _ -> true
  in
  Alcotest.(check bool) "chunks ranked hottest first" true
    (hottest_first e.chunks);
  (* the dominant prefix really covers the threshold share (default 0.9) *)
  let samples l =
    List.fold_left (fun a (c : Softcache.Sizing.chunk_info) -> a + c.ci_samples) 0 l
  in
  let total = samples e.chunks and dom = samples (dom_prefix e) in
  Alcotest.(check bool)
    (Printf.sprintf "dominant samples %d cover 90%% of %d" dom total)
    true
    (10 * dom >= 9 * total);
  (* and it is priced consistently *)
  let dom_tc =
    List.fold_left
      (fun a (c : Softcache.Sizing.chunk_info) -> a + c.ci_tcache_bytes)
      0 (dom_prefix e)
  in
  Alcotest.(check int) "dominant tcache bytes = prefix sum" dom_tc
    e.dominant_tcache_bytes;
  Alcotest.(check bool) "rewritten >= source footprint" true
    (e.dominant_tcache_bytes >= e.dominant_source_bytes);
  Alcotest.(check bool) "headroom inflates" true
    (e.predicted_bytes > e.dominant_tcache_bytes);
  (* the knee is the smallest ladder entry covering the prediction *)
  match e.predicted_knee with
  | None -> Alcotest.fail "compress95 prediction fell off the Fig. 7 ladder"
  | Some k ->
    Alcotest.(check bool) "knee on the ladder" true (List.mem k ladder);
    Alcotest.(check bool) "knee covers prediction" true (k >= e.predicted_bytes);
    List.iter
      (fun s ->
        if s < k then
          Alcotest.(check bool)
            (Printf.sprintf "%d below knee %d is too small" s k)
            true (s < e.predicted_bytes))
      ladder

let test_threshold_monotone () =
  let img, prof = Lazy.force compress in
  let at t = (estimate ~threshold:t img prof).Softcache.Sizing.dominant_tcache_bytes in
  let a = at 0.5 and b = at 0.9 and c = at 1.0 in
  Alcotest.(check bool)
    (Printf.sprintf "dominant bytes monotone in threshold: %d <= %d <= %d" a b c)
    true
    (a <= b && b <= c)

let test_headroom_monotone () =
  let img, prof = Lazy.force compress in
  let at h = (estimate ~headroom:h img prof).Softcache.Sizing.predicted_bytes in
  let a = at 1.0 and b = at 1.4 and c = at 2.0 in
  Alcotest.(check bool)
    (Printf.sprintf "prediction monotone in headroom: %d <= %d <= %d" a b c)
    true
    (a <= b && b <= c);
  (* headroom 1.0 is the identity on the dominant footprint *)
  let e = estimate ~headroom:1.0 img prof in
  Alcotest.(check int) "headroom 1.0 adds nothing" e.Softcache.Sizing.dominant_tcache_bytes
    e.predicted_bytes

let test_unsorted_ladder () =
  let img, prof = Lazy.force compress in
  let a = estimate img prof in
  let b = estimate ~sizes:(List.rev ladder) img prof in
  Alcotest.(check (option int)) "ladder order is irrelevant"
    a.Softcache.Sizing.predicted_knee b.Softcache.Sizing.predicted_knee

let test_ladder_too_small () =
  let img, prof = Lazy.force compress in
  let e = estimate ~sizes:[ 64; 128 ] img prof in
  Alcotest.(check (option int)) "prediction off the ladder" None
    e.Softcache.Sizing.predicted_knee

let test_zero_sample_profile () =
  (* no profile signal: nothing dominates, the prediction is zero and
     the knee degenerates to the smallest ladder entry *)
  let img, _ = Lazy.force compress in
  let e =
    Softcache.Sizing.estimate ~image:img
      ~chunking:Softcache.Config.Basic_block
      ~samples_in:(fun ~lo:_ ~hi:_ -> 0)
      ~sizes:ladder ()
  in
  Alcotest.(check bool) "walk still covers the CFG" true (e.chunks_walked > 0);
  Alcotest.(check int) "empty dominant set" 0 e.dominant_chunks;
  Alcotest.(check int) "zero dominant bytes" 0 e.dominant_tcache_bytes;
  Alcotest.(check int) "zero prediction" 0 e.predicted_bytes;
  Alcotest.(check (option int)) "knee = smallest size" (Some 256)
    e.predicted_knee

let test_deep_thrash () =
  (* compress95 predicts ~11.5 KB: primed two steps below, unprimed in
     the transition zone and above *)
  let img, prof = Lazy.force compress in
  let e = estimate img prof in
  Alcotest.(check bool) "deep thrash far below the knee" true
    (Softcache.Sizing.deep_thrash e ~tcache_bytes:4096);
  Alcotest.(check bool) "transition zone is unprimed" false
    (Softcache.Sizing.deep_thrash e ~tcache_bytes:8192);
  Alcotest.(check bool) "above the knee is unprimed" false
    (Softcache.Sizing.deep_thrash e ~tcache_bytes:65536);
  (* monotone: shrinking the tcache never leaves the regime *)
  let rec monotone prev = function
    | [] -> true
    | s :: rest ->
      let d = Softcache.Sizing.deep_thrash e ~tcache_bytes:s in
      ((not prev) || d) && monotone d rest
  in
  Alcotest.(check bool) "monotone in size" true
    (monotone false (List.rev ladder))

let test_invalid_args () =
  let img, prof = Lazy.force compress in
  let check_rejects name f =
    match f () with
    | (_ : Softcache.Sizing.estimate) ->
      Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  check_rejects "threshold 0" (fun () -> estimate ~threshold:0.0 img prof);
  check_rejects "threshold > 1" (fun () -> estimate ~threshold:1.5 img prof);
  check_rejects "headroom < 1" (fun () -> estimate ~headroom:0.5 img prof)

let () =
  Alcotest.run "sizing"
    [
      ( "estimate",
        [
          Alcotest.test_case "structure on compress95" `Quick
            test_estimate_structure;
          Alcotest.test_case "threshold monotone" `Quick test_threshold_monotone;
          Alcotest.test_case "headroom monotone" `Quick test_headroom_monotone;
          Alcotest.test_case "ladder order irrelevant" `Quick
            test_unsorted_ladder;
          Alcotest.test_case "ladder too small" `Quick test_ladder_too_small;
          Alcotest.test_case "zero-sample profile" `Quick
            test_zero_sample_profile;
          Alcotest.test_case "deep-thrash regime" `Quick test_deep_thrash;
          Alcotest.test_case "invalid arguments" `Quick test_invalid_args;
        ] );
    ]
