(* End-to-end tests of the SoftCache: the headline invariant is that
   execution under the software cache is observationally identical to
   native execution, for every chunking mode, eviction policy and cache
   size — including sizes that force heavy eviction, stack scrubbing
   and whole-cache flushes. *)

let reg = Isa.Reg.r

(* ------------------------------------------------------------------ *)
(* Test programs *)

(* Sum 1..n with a tight loop. *)
let prog_sum n =
  let b = Isa.Builder.create "sum" in
  Isa.Builder.li b (reg 1) n;
  Isa.Builder.li b (reg 2) 0;
  let top = Isa.Builder.label b in
  Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 2, reg 1));
  Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 1, reg 1, -1));
  Isa.Builder.br b Ne (reg 1) Isa.Reg.zero top;
  Isa.Builder.ins b (Isa.Instr.Out (reg 2));
  Isa.Builder.ins b Isa.Instr.Halt;
  Isa.Builder.build b

(* Recursive Fibonacci: deep call stack, saved return addresses. *)
let prog_fib n =
  let b = Isa.Builder.create "fib" in
  let fib = Isa.Builder.new_label b in
  let base = Isa.Builder.new_label b in
  let main = Isa.Builder.new_label b in
  Isa.Builder.entry b main;
  Isa.Builder.func b "fib" fib (fun () ->
      Isa.Builder.li b (reg 3) 2;
      Isa.Builder.br b Lt (reg 1) (reg 3) base;
      Isa.Builder.ins b (Isa.Instr.Alui (Add, Isa.Reg.sp, Isa.Reg.sp, -12));
      Isa.Builder.ins b (Isa.Instr.St (Isa.Reg.ra, Isa.Reg.sp, 0));
      Isa.Builder.ins b (Isa.Instr.St (reg 1, Isa.Reg.sp, 4));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 1, reg 1, -1));
      Isa.Builder.jal b fib;
      Isa.Builder.ins b (Isa.Instr.St (reg 2, Isa.Reg.sp, 8));
      Isa.Builder.ins b (Isa.Instr.Ld (reg 1, Isa.Reg.sp, 4));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 1, reg 1, -2));
      Isa.Builder.jal b fib;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 3, Isa.Reg.sp, 8));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 2, reg 3));
      Isa.Builder.ins b (Isa.Instr.Ld (Isa.Reg.ra, Isa.Reg.sp, 0));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, Isa.Reg.sp, Isa.Reg.sp, 12));
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra);
      Isa.Builder.here b base;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 1, Isa.Reg.zero));
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));
  Isa.Builder.func b "main" main (fun () ->
      Isa.Builder.li b (reg 1) n;
      Isa.Builder.jal b fib;
      Isa.Builder.ins b (Isa.Instr.Out (reg 2));
      Isa.Builder.ins b Isa.Instr.Halt);
  Isa.Builder.build b

(* Indirect calls through a function-pointer table in data. *)
let prog_jumptable iters =
  let b = Isa.Builder.create "jumptable" in
  let f0 = Isa.Builder.new_label b in
  let f1 = Isa.Builder.new_label b in
  let f2 = Isa.Builder.new_label b in
  let main = Isa.Builder.new_label b in
  Isa.Builder.entry b main;
  let mk_f name l inc =
    Isa.Builder.func b name l (fun () ->
        Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 2, reg 2, inc));
        Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra))
  in
  mk_f "f0" f0 1;
  mk_f "f1" f1 10;
  mk_f "f2" f2 100;
  let tbl = Isa.Builder.space b 12 in
  Isa.Builder.func b "main" main (fun () ->
      Isa.Builder.li b (reg 10) tbl;
      Isa.Builder.la b (reg 11) f0;
      Isa.Builder.ins b (Isa.Instr.St (reg 11, reg 10, 0));
      Isa.Builder.la b (reg 11) f1;
      Isa.Builder.ins b (Isa.Instr.St (reg 11, reg 10, 4));
      Isa.Builder.la b (reg 11) f2;
      Isa.Builder.ins b (Isa.Instr.St (reg 11, reg 10, 8));
      Isa.Builder.li b (reg 1) 0;
      Isa.Builder.li b (reg 2) 0;
      Isa.Builder.li b (reg 9) iters;
      Isa.Builder.li b (reg 6) 3;
      let loop = Isa.Builder.label b in
      Isa.Builder.ins b (Isa.Instr.Alu (Div, reg 3, reg 1, reg 6));
      Isa.Builder.ins b (Isa.Instr.Alu (Mul, reg 4, reg 3, reg 6));
      Isa.Builder.ins b (Isa.Instr.Alu (Sub, reg 5, reg 1, reg 4));
      Isa.Builder.ins b (Isa.Instr.Alui (Sll, reg 5, reg 5, 2));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 5, reg 5, reg 10));
      Isa.Builder.ins b (Isa.Instr.Ld (reg 7, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Jalr (Isa.Reg.ra, reg 7));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 1, reg 1, 1));
      Isa.Builder.br b Ne (reg 1) (reg 9) loop;
      Isa.Builder.ins b (Isa.Instr.Out (reg 2));
      Isa.Builder.ins b Isa.Instr.Halt);
  Isa.Builder.build b

(* Computed (non-call) jump: a two-way switch through jr. *)
let prog_switch sel =
  let b = Isa.Builder.create "switch" in
  let case0 = Isa.Builder.new_label b in
  let case1 = Isa.Builder.new_label b in
  let fin = Isa.Builder.new_label b in
  Isa.Builder.li b (reg 1) sel;
  Isa.Builder.la b (reg 5) case0;
  Isa.Builder.la b (reg 6) case1;
  Isa.Builder.br b Eq (reg 1) Isa.Reg.zero fin;
  Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 5, reg 6, Isa.Reg.zero));
  Isa.Builder.here b fin;
  Isa.Builder.ins b (Isa.Instr.Jr (reg 5));
  Isa.Builder.here b case0;
  Isa.Builder.li b (reg 2) 111;
  Isa.Builder.ins b (Isa.Instr.Out (reg 2));
  Isa.Builder.ins b Isa.Instr.Halt;
  Isa.Builder.here b case1;
  Isa.Builder.li b (reg 2) 222;
  Isa.Builder.ins b (Isa.Instr.Out (reg 2));
  Isa.Builder.ins b Isa.Instr.Halt;
  Isa.Builder.build b

(* Multi-phase program: several procedures with disjoint code, called
   in sequence (the Figure 2 "operating modes" pattern). [pad] bulks up
   each phase's code so small tcaches must page. *)
let prog_phases ?(pad = 20) ?(inner = 50) () =
  let b = Isa.Builder.create "phases" in
  let main = Isa.Builder.new_label b in
  let phases = Array.init 4 (fun _ -> Isa.Builder.new_label b) in
  Isa.Builder.entry b main;
  Array.iteri
    (fun pi l ->
      Isa.Builder.func b (Printf.sprintf "phase%d" pi) l (fun () ->
          (* r2 accumulates; r1 loop counter *)
          Isa.Builder.li b (reg 1) inner;
          let top = Isa.Builder.label b in
          for k = 0 to pad - 1 do
            Isa.Builder.ins b
              (Isa.Instr.Alui (Add, reg 2, reg 2, ((pi + 1) * 7) + (k mod 3)))
          done;
          Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 1, reg 1, -1));
          Isa.Builder.br b Ne (reg 1) Isa.Reg.zero top;
          Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra)))
    phases;
  Isa.Builder.func b "main" main (fun () ->
      Isa.Builder.li b (reg 2) 0;
      Array.iter (fun l -> Isa.Builder.jal b l) phases;
      (* revisit phase 0: steady-state code must be re-translatable *)
      Isa.Builder.jal b phases.(0);
      Isa.Builder.ins b (Isa.Instr.Out (reg 2));
      Isa.Builder.ins b Isa.Instr.Halt);
  Isa.Builder.build b

(* ------------------------------------------------------------------ *)
(* Equivalence harness *)

let configs ?(audit = false) ~tiny () =
  let open Softcache.Config in
  let base = if tiny then 768 else 48 * 1024 in
  [
    ( "bb/fifo",
      make ~tcache_bytes:base ~chunking:Basic_block ~eviction:Fifo ~audit () );
    ( "bb/flush",
      make ~tcache_bytes:base ~chunking:Basic_block ~eviction:Flush_all
        ~audit () );
    ( "proc/fifo",
      make ~tcache_bytes:(max base 2048) ~chunking:Procedure ~eviction:Fifo
        ~audit () );
    ( "proc/flush",
      make ~tcache_bytes:(max base 2048) ~chunking:Procedure
        ~eviction:Flush_all ~audit () );
  ]

(* The whole matrix runs with the tcache invariant auditor attached:
   every translation, patch, eviction, invalidation and flush is
   followed by a full structural audit of the cache. *)
let check_equivalence ?(tiny = false) name img =
  let native = Softcache.Runner.native img in
  Alcotest.(check bool)
    (name ^ " native halts") true
    (native.outcome = Machine.Cpu.Halted);
  List.iter
    (fun (cname, cfg) ->
      let audits = ref None in
      let prepare ctrl = audits := Check.Audit.install_if_configured ctrl in
      let cached, ctrl = Softcache.Runner.cached_robust ~prepare cfg img in
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s halts" name cname)
        true
        (cached.status = Softcache.Runner.Finished Machine.Cpu.Halted);
      Alcotest.(check (list int))
        (Printf.sprintf "%s/%s outputs" name cname)
        native.outputs cached.outputs;
      (match !audits with
      | Some n when !n > 0 -> ()
      | Some _ -> Alcotest.failf "%s/%s: auditor never ran" name cname
      | None -> Alcotest.failf "%s/%s: auditor not installed" name cname);
      match Check.Audit.run ctrl with
      | [] -> ()
      | vs ->
        Alcotest.failf "%s/%s: final audit failed: %s" name cname
          (String.concat "; "
             (List.map
                (fun v -> Format.asprintf "%a" Check.Audit.pp_violation v)
                vs)))
    (configs ~audit:true ~tiny ())

let test_equiv_sum () = check_equivalence "sum" (prog_sum 1000)
let test_equiv_fib () = check_equivalence "fib" (prog_fib 15)
let test_equiv_jumptable () = check_equivalence "jumptable" (prog_jumptable 30)

let test_equiv_switch () =
  check_equivalence "switch0" (prog_switch 0);
  check_equivalence "switch1" (prog_switch 1)

let test_equiv_phases () = check_equivalence "phases" (prog_phases ())

let test_equiv_tiny_cache () =
  check_equivalence ~tiny:true "sum" (prog_sum 500);
  check_equivalence ~tiny:true "fib" (prog_fib 12);
  check_equivalence ~tiny:true "jumptable" (prog_jumptable 20);
  check_equivalence ~tiny:true "phases" (prog_phases ())

(* Random program parameters under random small caches: the paging /
   scrubbing / flush machinery must never change observable results. *)
let test_random_fib_equiv =
  QCheck.Test.make ~count:40 ~name:"fib equivalence under random tiny caches"
    QCheck.(
      make
        ~print:(fun (n, sz, ch, ev) ->
          Printf.sprintf "n=%d size=%d chunking=%d eviction=%d" n sz ch ev)
        Gen.(quad (int_range 1 14) (int_range 600 4000) (int_bound 1) (int_bound 1)))
    (fun (n, size, ch, ev) ->
      let img = prog_fib n in
      let cfg =
        Softcache.Config.make ~tcache_bytes:size
          ~chunking:(if ch = 0 then Basic_block else Procedure)
          ~eviction:(if ev = 0 then Flush_all else Fifo)
          ()
      in
      let native = Softcache.Runner.native img in
      match Softcache.Runner.cached cfg img with
      | cached, _ -> cached.outputs = native.outputs
      | exception Softcache.Controller.Chunk_too_large _ ->
        (* acceptable only in procedure mode with a tiny cache *)
        ch = 1)

(* ------------------------------------------------------------------ *)
(* The paper's guarantees *)

(* "We can guarantee a 100% hit rate for codes that fit in the cache":
   once the working set is translated, no further misses occur, so the
   translation count must not depend on how long the program runs. *)
let test_hit_rate_guarantee () =
  let t n =
    let _, ctrl =
      Softcache.Runner.cached (Softcache.Config.sparc_prototype ()) (prog_sum n)
    in
    ctrl.stats.translations
  in
  Alcotest.(check int) "translations independent of run length" (t 10)
    (t 100_000);
  let t_fib n =
    let _, ctrl =
      Softcache.Runner.cached (Softcache.Config.sparc_prototype ()) (prog_fib n)
    in
    ctrl.stats.translations
  in
  Alcotest.(check int) "fib translations independent of depth" (t_fib 5)
    (t_fib 18)

let test_no_evictions_when_fitting () =
  let _, ctrl =
    Softcache.Runner.cached (Softcache.Config.sparc_prototype ()) (prog_fib 16)
  in
  Alcotest.(check int) "no evictions" 0 ctrl.stats.evicted_blocks;
  Alcotest.(check int) "no flushes" 0 ctrl.stats.flushes

let test_paging_when_small () =
  let cfg = Softcache.Config.make ~tcache_bytes:768 () in
  let cached, ctrl = Softcache.Runner.cached cfg (prog_phases ~pad:80 ~inner:50 ()) in
  Alcotest.(check bool) "halts" true (cached.outcome = Machine.Cpu.Halted);
  Alcotest.(check bool) "evicts" true (ctrl.stats.evicted_blocks > 0);
  Alcotest.(check bool)
    "occupancy bounded" true
    (ctrl.stats.max_occupied_bytes <= 768)

let test_slowdown_reasonable () =
  let img = prog_sum 100_000 in
  let native = Softcache.Runner.native img in
  let cached, _ = Softcache.Runner.cached (Softcache.Config.sparc_prototype ()) img in
  let s = Softcache.Runner.slowdown ~native ~cached in
  Alcotest.(check bool)
    (Printf.sprintf "slowdown %.3f in (1, 2)" s)
    true
    (s > 1.0 && s < 2.0)

let test_miss_rate_decreases_with_size () =
  let img = prog_phases ~pad:80 ~inner:30 () in
  let rate size =
    let cached, ctrl =
      Softcache.Runner.cached (Softcache.Config.make ~tcache_bytes:size ()) img
    in
    Softcache.Stats.miss_rate ctrl.stats ~retired:cached.retired
  in
  let small = rate 768 and big = rate (32 * 1024) in
  Alcotest.(check bool)
    (Printf.sprintf "miss rate shrinks (%.5f -> %.5f)" small big)
    true (big < small)

(* ------------------------------------------------------------------ *)
(* Invalidation *)

let test_invalidate_midrun () =
  let img = prog_fib 17 in
  let native = Softcache.Runner.native img in
  let ctrl =
    Softcache.Controller.create (Softcache.Config.sparc_prototype ()) img
  in
  (* run in slices, invalidating everything between slices: correctness
     must survive losing the whole cache at arbitrary points, including
     with live return addresses on the stack *)
  let rec go guard =
    if guard = 0 then Alcotest.fail "did not terminate"
    else
      match Softcache.Controller.run ~fuel:997 ctrl with
      | Machine.Cpu.Halted -> ()
      | Machine.Cpu.Out_of_fuel ->
        Softcache.Controller.invalidate ctrl ~lo:img.code_base
          ~hi:(Isa.Image.code_end img);
        go (guard - 1)
  in
  go 10_000;
  Alcotest.(check (list int))
    "outputs survive repeated invalidation" native.outputs
    (Machine.Cpu.outputs ctrl.cpu)

let test_flush_midrun () =
  let img = prog_fib 16 in
  let native = Softcache.Runner.native img in
  let ctrl =
    Softcache.Controller.create (Softcache.Config.sparc_prototype ()) img
  in
  let rec go guard =
    if guard = 0 then Alcotest.fail "did not terminate"
    else
      match Softcache.Controller.run ~fuel:1009 ctrl with
      | Machine.Cpu.Halted -> ()
      | Machine.Cpu.Out_of_fuel ->
        Softcache.Controller.flush ctrl;
        go (guard - 1)
  in
  go 10_000;
  Alcotest.(check (list int))
    "outputs survive repeated flushes" native.outputs
    (Machine.Cpu.outputs ctrl.cpu);
  Alcotest.(check bool) "flushes counted" true (ctrl.stats.flushes > 0)

let test_partial_invalidate () =
  (* invalidate only one procedure's range; everything still works *)
  let img = prog_phases () in
  let native = Softcache.Runner.native img in
  let ctrl =
    Softcache.Controller.create (Softcache.Config.sparc_prototype ()) img
  in
  let p1 = Option.get (Isa.Image.find_symbol img "phase1") in
  let rec go guard =
    if guard = 0 then Alcotest.fail "did not terminate"
    else
      match Softcache.Controller.run ~fuel:499 ctrl with
      | Machine.Cpu.Halted -> ()
      | Machine.Cpu.Out_of_fuel ->
        Softcache.Controller.invalidate ctrl ~lo:p1.sym_addr
          ~hi:(p1.sym_addr + p1.sym_size);
        go (guard - 1)
  in
  go 10_000;
  Alcotest.(check (list int))
    "outputs survive partial invalidation" native.outputs
    (Machine.Cpu.outputs ctrl.cpu)

(* ------------------------------------------------------------------ *)
(* Accounting *)

let test_network_accounting () =
  let net = Netmodel.ethernet_10mbps () in
  let cfg = Softcache.Config.make ~chunking:Procedure ~net () in
  let _, ctrl = Softcache.Runner.cached cfg (prog_fib 10) in
  Alcotest.(check int)
    "one message per translation" ctrl.stats.translations
    (Netmodel.messages net);
  Alcotest.(check int)
    "payload is emitted words"
    (ctrl.stats.translated_words * 4)
    (Netmodel.payload_bytes net);
  Alcotest.(check int)
    "60B protocol overhead per chunk"
    (Netmodel.payload_bytes net + (60 * Netmodel.messages net))
    (Netmodel.total_bytes net)

let test_metadata_reported () =
  let _, ctrl =
    Softcache.Runner.cached (Softcache.Config.sparc_prototype ()) (prog_fib 10)
  in
  Alcotest.(check bool)
    "metadata bytes positive" true
    (Softcache.Controller.metadata_bytes ctrl > 0)

let test_chunk_too_large () =
  let img = prog_phases ~pad:200 ~inner:1 () in
  let cfg =
    Softcache.Config.make ~tcache_bytes:256 ~chunking:Procedure ()
  in
  match Softcache.Runner.cached cfg img with
  | exception Softcache.Controller.Chunk_too_large _ -> ()
  | _ -> Alcotest.fail "expected Chunk_too_large"

(* ------------------------------------------------------------------ *)
(* Pinning and preloading (Section 4 novel capabilities) *)

let test_pin_survives_thrash () =
  let img = prog_phases ~pad:80 ~inner:50 () in
  let native = Softcache.Runner.native img in
  let p0 = Option.get (Isa.Image.find_symbol img "phase0") in
  let cfg = Softcache.Config.make ~tcache_bytes:1024 () in
  let ctrl = Softcache.Controller.create cfg img in
  Softcache.Controller.pin ctrl p0.sym_addr;
  Alcotest.(check bool) "pinned" true
    (Softcache.Controller.is_pinned ctrl p0.sym_addr);
  let outcome = Softcache.Controller.run ctrl in
  Alcotest.(check bool) "halts" true (outcome = Machine.Cpu.Halted);
  Alcotest.(check (list int)) "outputs" native.outputs
    (Machine.Cpu.outputs ctrl.cpu);
  Alcotest.(check bool) "thrash happened" true
    (ctrl.stats.evicted_blocks > 0);
  Alcotest.(check bool) "pinned chunk still resident" true
    (Softcache.Controller.resident ctrl p0.sym_addr)

let test_pin_survives_flush () =
  let img = prog_fib 12 in
  let fib = Option.get (Isa.Image.find_symbol img "fib") in
  let ctrl =
    Softcache.Controller.create (Softcache.Config.sparc_prototype ()) img
  in
  Softcache.Controller.pin ctrl fib.sym_addr;
  let _ = Softcache.Controller.run ~fuel:5000 ctrl in
  Softcache.Controller.flush ctrl;
  Alcotest.(check bool) "resident after flush" true
    (Softcache.Controller.resident ctrl fib.sym_addr);
  Alcotest.(check bool) "still pinned" true
    (Softcache.Controller.is_pinned ctrl fib.sym_addr);
  let outcome = Softcache.Controller.run ctrl in
  Alcotest.(check bool) "completes correctly" true
    (outcome = Machine.Cpu.Halted
    && Machine.Cpu.outputs ctrl.cpu = (Softcache.Runner.native img).outputs)

let test_unpin_allows_eviction () =
  let img = prog_fib 10 in
  let fib = Option.get (Isa.Image.find_symbol img "fib") in
  let ctrl =
    Softcache.Controller.create (Softcache.Config.sparc_prototype ()) img
  in
  Softcache.Controller.pin ctrl fib.sym_addr;
  Softcache.Controller.unpin ctrl fib.sym_addr;
  Softcache.Controller.flush ctrl;
  Alcotest.(check bool) "evicted after unpin + flush" false
    (Softcache.Controller.resident ctrl fib.sym_addr)

let test_invalidate_overrides_pin () =
  let img = prog_fib 10 in
  let fib = Option.get (Isa.Image.find_symbol img "fib") in
  let ctrl =
    Softcache.Controller.create (Softcache.Config.sparc_prototype ()) img
  in
  Softcache.Controller.pin ctrl fib.sym_addr;
  Softcache.Controller.invalidate ctrl ~lo:fib.sym_addr
    ~hi:(fib.sym_addr + fib.sym_size);
  Alcotest.(check bool) "invalidated despite pin" false
    (Softcache.Controller.resident ctrl fib.sym_addr);
  let outcome = Softcache.Controller.run ctrl in
  Alcotest.(check bool) "still correct" true
    (outcome = Machine.Cpu.Halted
    && Machine.Cpu.outputs ctrl.cpu = (Softcache.Runner.native img).outputs)

let test_pin_equivalence_under_thrash =
  QCheck.Test.make ~count:20 ~name:"pinning never changes results"
    QCheck.(make Gen.(pair (int_range 6 13) (int_range 700 2000)))
    (fun (n, size) ->
      let img = prog_fib n in
      let fib = Option.get (Isa.Image.find_symbol img "fib") in
      let native = Softcache.Runner.native img in
      let ctrl =
        Softcache.Controller.create
          (Softcache.Config.make ~tcache_bytes:size ())
          img
      in
      match Softcache.Controller.pin ctrl fib.sym_addr with
      | () -> (
        match Softcache.Controller.run ctrl with
        | Machine.Cpu.Halted ->
          Machine.Cpu.outputs ctrl.cpu = native.outputs
        | Machine.Cpu.Out_of_fuel -> false)
      | exception Softcache.Controller.Chunk_too_large _ -> true)

let test_preload_eliminates_misses () =
  let img = prog_phases ~pad:20 ~inner:50 () in
  let ctrl =
    Softcache.Controller.create (Softcache.Config.sparc_prototype ()) img
  in
  Softcache.Controller.preload ctrl ~lo:img.code_base
    ~hi:(Isa.Image.code_end img);
  let before = ctrl.stats.translations in
  let outcome = Softcache.Controller.run ctrl in
  Alcotest.(check bool) "halts" true (outcome = Machine.Cpu.Halted);
  (* the whole image is resident: running adds no translations *)
  Alcotest.(check int) "no further misses" before ctrl.stats.translations

let test_stats_consistency () =
  let cfg = Softcache.Config.make ~tcache_bytes:1024 () in
  let cached, ctrl = Softcache.Runner.cached cfg (prog_phases ()) in
  let s = ctrl.stats in
  Alcotest.(check bool) "halts" true (cached.outcome = Machine.Cpu.Halted);
  Alcotest.(check bool)
    "translated words >= translations" true
    (s.translated_words >= s.translations);
  Alcotest.(check bool)
    "eviction events sum to evicted blocks" true
    (Softcache.Stats.eviction_dropped s = 0
    && List.fold_left
         (fun a (_, n) -> a + n)
         0
         (Softcache.Stats.eviction_series s)
       = s.evicted_blocks);
  Alcotest.(check bool)
    "events stamped in nondecreasing cycle order" true
    (let series = Softcache.Stats.eviction_series s in
     let rec mono = function
       | (c1, _) :: ((c2, _) :: _ as rest) -> c1 <= c2 && mono rest
       | _ -> true
     in
     mono series)

(* Soak test: interleave execution slices with random controller
   operations. Whatever the schedule of invalidations, flushes, pins
   and preloads, observable behaviour must equal native execution. *)
let test_soak =
  let schedule_gen =
    QCheck.Gen.(
      triple (int_range 8 14) (int_range 700 4000)
        (list_size (int_range 1 12) (int_bound 5)))
  in
  QCheck.Test.make ~count:30
    ~name:"random op schedules never change results"
    QCheck.(
      make
        ~print:(fun (n, sz, ops) ->
          Printf.sprintf "fib %d, %dB, ops=[%s]" n sz
            (String.concat ";" (List.map string_of_int ops)))
        schedule_gen)
    (fun (n, size, ops) ->
      let img = prog_fib n in
      let native = Softcache.Runner.native img in
      let fib = Option.get (Isa.Image.find_symbol img "fib") in
      let ctrl =
        Softcache.Controller.create
          (Softcache.Config.make ~tcache_bytes:size ())
          img
      in
      let apply op =
        match op with
        | 0 ->
          Softcache.Controller.invalidate ctrl ~lo:img.code_base
            ~hi:(Isa.Image.code_end img)
        | 1 -> Softcache.Controller.flush ctrl
        | 2 -> Softcache.Controller.pin ctrl fib.sym_addr
        | 3 -> Softcache.Controller.unpin ctrl fib.sym_addr
        | 4 ->
          Softcache.Controller.preload ctrl ~lo:fib.sym_addr
            ~hi:(fib.sym_addr + fib.sym_size)
        | _ ->
          Softcache.Controller.invalidate ctrl ~lo:fib.sym_addr
            ~hi:(fib.sym_addr + 8)
      in
      let rec go ops guard =
        if guard = 0 then false
        else
          match Softcache.Controller.run ~fuel:1777 ctrl with
          | Machine.Cpu.Halted -> Machine.Cpu.outputs ctrl.cpu = native.outputs
          | Machine.Cpu.Out_of_fuel ->
            (match ops with
            | op :: rest ->
              apply op;
              go rest guard
            | [] -> go [] (guard - 1))
      in
      match go ops 200_000 with
      | ok -> ok
      | exception Softcache.Controller.Chunk_too_large _ -> true)

(* ------------------------------------------------------------------ *)
(* The thread-system interface: return addresses in non-stack storage *)

(* A program that parks its return address in a global "thread control
   block" (the paper's example of non-stack return-address storage),
   then churns through enough other code to force the caller's block
   out of a small tcache before returning through the global. *)
let prog_tcb () =
  let b = Isa.Builder.create "tcb" in
  let tcb = Isa.Builder.word b 0 in
  let fillers = Array.init 6 (fun _ -> Isa.Builder.new_label b) in
  let trampoline = Isa.Builder.new_label b in
  let main = Isa.Builder.new_label b in
  Isa.Builder.entry b main;
  Array.iteri
    (fun i l ->
      Isa.Builder.func b (Printf.sprintf "filler%d" i) l (fun () ->
          Isa.Builder.li b (reg 5) 40;
          let top = Isa.Builder.label b in
          for k = 0 to 24 do
            Isa.Builder.ins b
              (Isa.Instr.Alui (Add, reg 2, reg 2, 1 + ((i + k) mod 5)))
          done;
          Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 5, reg 5, -1));
          Isa.Builder.br b Ne (reg 5) Isa.Reg.zero top;
          Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra)))
    fillers;
  Isa.Builder.func b "trampoline" trampoline (fun () ->
      (* save ra in the TCB — non-stack storage *)
      Isa.Builder.li b (reg 5) tcb;
      Isa.Builder.ins b (Isa.Instr.St (Isa.Reg.ra, reg 5, 0));
      Array.iter (fun l -> Isa.Builder.jal b l) fillers;
      (* return through the TCB *)
      Isa.Builder.li b (reg 5) tcb;
      Isa.Builder.ins b (Isa.Instr.Ld (Isa.Reg.ra, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));
  Isa.Builder.func b "main" main (fun () ->
      Isa.Builder.li b (reg 16) 20;
      let loop = Isa.Builder.label b in
      Isa.Builder.jal b trampoline;
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 16, reg 16, -1));
      Isa.Builder.br b Ne (reg 16) Isa.Reg.zero loop;
      Isa.Builder.ins b (Isa.Instr.Out (reg 2));
      Isa.Builder.ins b Isa.Instr.Halt);
  (Isa.Builder.build b, tcb)

let test_ra_region_registration () =
  let img, tcb = prog_tcb () in
  let native = Softcache.Runner.native img in
  Alcotest.(check bool) "native halts" true
    (native.outcome = Machine.Cpu.Halted);
  (* with the thread-system interface: correct under heavy paging *)
  let cfg = Softcache.Config.make ~tcache_bytes:640 () in
  let ctrl = Softcache.Controller.create cfg img in
  Softcache.Controller.register_ra_region ctrl ~lo:tcb ~hi:(tcb + 4);
  let outcome = Softcache.Controller.run ~fuel:10_000_000 ctrl in
  Alcotest.(check bool) "halts with registration" true
    (outcome = Machine.Cpu.Halted);
  Alcotest.(check (list int)) "outputs with registration" native.outputs
    (Machine.Cpu.outputs ctrl.cpu);
  Alcotest.(check bool) "paging actually happened" true
    (ctrl.stats.evicted_blocks > 0);
  (* without registration the program violates the programming model:
     the run must NOT be silently trusted — it either faults, diverges
     or mismatches (any of these demonstrates why the interface
     exists). If it happens to survive, the tcache was not pressured
     enough and the test is vacuous, so flag that too. *)
  let ctrl2 = Softcache.Controller.create cfg img in
  let unregistered_broke =
    match Softcache.Controller.run ~fuel:10_000_000 ctrl2 with
    | Machine.Cpu.Halted ->
      Machine.Cpu.outputs ctrl2.cpu <> native.outputs
    | Machine.Cpu.Out_of_fuel -> true
    | exception Machine.Cpu.Fault _ -> true
    | exception Softcache.Chunker.Bad_address _ -> true
  in
  Alcotest.(check bool)
    "unregistered TCB storage misbehaves under paging" true
    unregistered_broke

let test_ra_region_validation () =
  let img, _ = prog_tcb () in
  let ctrl =
    Softcache.Controller.create (Softcache.Config.sparc_prototype ()) img
  in
  match Softcache.Controller.register_ra_region ctrl ~lo:0x101 ~hi:0x200 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "unaligned region should be rejected"

(* ------------------------------------------------------------------ *)
(* Debug views *)

let test_debug_views () =
  let img = prog_fib 10 in
  let ctrl =
    Softcache.Controller.create (Softcache.Config.sparc_prototype ()) img
  in
  let _ = Softcache.Controller.run ctrl in
  let dump = Softcache.Debug.dump_blocks ctrl in
  Alcotest.(check bool) "dump names fib" true
    (let n = String.length dump in
     let rec has i =
       i + 3 <= n && (String.sub dump i 3 = "fib" || has (i + 1))
     in
     has 0);
  (match Softcache.Debug.disasm_block ctrl img.entry with
  | Some listing ->
    Alcotest.(check bool) "entry block disassembles" true
      (String.length listing > 0)
  | None -> Alcotest.fail "entry block should be resident");
  Alcotest.(check bool) "summary renders" true
    (String.length (Softcache.Debug.summary ctrl) > 0);
  Alcotest.(check bool) "absent block" true
    (Softcache.Debug.disasm_block ctrl 0xDEAD00 = None)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "softcache"
    [
      ( "equivalence",
        [
          Alcotest.test_case "sum" `Quick test_equiv_sum;
          Alcotest.test_case "fib" `Quick test_equiv_fib;
          Alcotest.test_case "jumptable" `Quick test_equiv_jumptable;
          Alcotest.test_case "computed switch" `Quick test_equiv_switch;
          Alcotest.test_case "phases" `Quick test_equiv_phases;
          Alcotest.test_case "tiny caches" `Quick test_equiv_tiny_cache;
          qt test_random_fib_equiv;
        ] );
      ( "guarantees",
        [
          Alcotest.test_case "100% hit rate when fitting" `Quick
            test_hit_rate_guarantee;
          Alcotest.test_case "no evictions when fitting" `Quick
            test_no_evictions_when_fitting;
          Alcotest.test_case "paging when small" `Quick test_paging_when_small;
          Alcotest.test_case "slowdown reasonable" `Quick
            test_slowdown_reasonable;
          Alcotest.test_case "miss rate vs size" `Quick
            test_miss_rate_decreases_with_size;
        ] );
      ( "invalidation",
        [
          Alcotest.test_case "invalidate mid-run" `Quick test_invalidate_midrun;
          Alcotest.test_case "flush mid-run" `Quick test_flush_midrun;
          Alcotest.test_case "partial invalidate" `Quick test_partial_invalidate;
        ] );
      ( "pinning",
        [
          Alcotest.test_case "pin survives thrash" `Quick
            test_pin_survives_thrash;
          Alcotest.test_case "pin survives flush" `Quick
            test_pin_survives_flush;
          Alcotest.test_case "unpin allows eviction" `Quick
            test_unpin_allows_eviction;
          Alcotest.test_case "invalidate overrides pin" `Quick
            test_invalidate_overrides_pin;
          qt test_pin_equivalence_under_thrash;
          Alcotest.test_case "preload eliminates misses" `Quick
            test_preload_eliminates_misses;
          qt test_soak;
        ] );
      ( "thread-system interface",
        [
          Alcotest.test_case "registered TCB region" `Quick
            test_ra_region_registration;
          Alcotest.test_case "region validation" `Quick
            test_ra_region_validation;
        ] );
      ( "debug",
        [ Alcotest.test_case "views" `Quick test_debug_views ] );
      ( "accounting",
        [
          Alcotest.test_case "network" `Quick test_network_accounting;
          Alcotest.test_case "metadata" `Quick test_metadata_reported;
          Alcotest.test_case "chunk too large" `Quick test_chunk_too_large;
          Alcotest.test_case "stats consistency" `Quick test_stats_consistency;
        ] );
    ]
