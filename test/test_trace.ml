(* The tracing subsystem and the fixes that ride along with it.

   The tentpole claim is zero perturbation: attaching a tracer must not
   move a single cycle, statistic or interconnect counter, and the
   cycle-attribution ledger must conserve exactly against the CPU cycle
   counter. Both are checked here directly and via the
   [Check.Lockstep.trace] differential runner across the whole workload
   registry, plus a mutation test proving the runner is not vacuous.

   Satellites: the ring bound on [Stats] eviction events, the shared
   [Bitmath] helpers, [Report.Series] negative-bar and CSV-escaping
   regressions, and schema validation of both exporters' real output. *)

let reg = Isa.Reg.r

let prog_sum n =
  let b = Isa.Builder.create "sum" in
  Isa.Builder.li b (reg 1) n;
  Isa.Builder.li b (reg 2) 0;
  let top = Isa.Builder.label b in
  Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 2, reg 1));
  Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 1, reg 1, -1));
  Isa.Builder.br b Ne (reg 1) Isa.Reg.zero top;
  Isa.Builder.ins b (Isa.Instr.Out (reg 2));
  Isa.Builder.ins b Isa.Instr.Halt;
  Isa.Builder.build b

let prog_fib n =
  let b = Isa.Builder.create "fib" in
  let fib = Isa.Builder.new_label b in
  let base = Isa.Builder.new_label b in
  let main = Isa.Builder.new_label b in
  Isa.Builder.entry b main;
  Isa.Builder.func b "fib" fib (fun () ->
      Isa.Builder.li b (reg 3) 2;
      Isa.Builder.br b Lt (reg 1) (reg 3) base;
      Isa.Builder.ins b (Isa.Instr.Alui (Add, Isa.Reg.sp, Isa.Reg.sp, -12));
      Isa.Builder.ins b (Isa.Instr.St (Isa.Reg.ra, Isa.Reg.sp, 0));
      Isa.Builder.ins b (Isa.Instr.St (reg 1, Isa.Reg.sp, 4));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 1, reg 1, -1));
      Isa.Builder.jal b fib;
      Isa.Builder.ins b (Isa.Instr.St (reg 2, Isa.Reg.sp, 8));
      Isa.Builder.ins b (Isa.Instr.Ld (reg 1, Isa.Reg.sp, 4));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 1, reg 1, -2));
      Isa.Builder.jal b fib;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 3, Isa.Reg.sp, 8));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 2, reg 3));
      Isa.Builder.ins b (Isa.Instr.Ld (Isa.Reg.ra, Isa.Reg.sp, 0));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, Isa.Reg.sp, Isa.Reg.sp, 12));
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra);
      Isa.Builder.here b base;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 1, Isa.Reg.zero));
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));
  Isa.Builder.func b "main" main (fun () ->
      Isa.Builder.li b (reg 1) n;
      Isa.Builder.jal b fib;
      Isa.Builder.ins b (Isa.Instr.Out (reg 2));
      Isa.Builder.ins b Isa.Instr.Halt);
  Isa.Builder.build b

let small_cfg ?(tcache_bytes = 1024) ?(eviction = Softcache.Config.Fifo)
    ?net () =
  Softcache.Config.make ~tcache_bytes ~chunking:Softcache.Config.Basic_block
    ~eviction ?net ()

(* run a workload with a tracer attached; returns the controller, the
   tracer and the outcome *)
let traced_run ?(fuel = 3_000_000) ?(limit = 65_536) cfg img =
  let ctrl = Softcache.Controller.create cfg img in
  let tr = Trace.create ~limit () in
  Softcache.Controller.attach_tracer ctrl tr;
  let outcome = Softcache.Controller.run ~fuel ctrl in
  (ctrl, tr, outcome)

(* ------------------------------------------------------------------ *)
(* Ring mechanics *)

let test_create_rejects_nonpositive () =
  List.iter
    (fun limit ->
      match Trace.create ~limit () with
      | _ -> Alcotest.failf "limit %d accepted" limit
      | exception Invalid_argument _ -> ())
    [ 0; -1 ]

let test_ring_bound_and_drop_counter () =
  let tr = Trace.create ~limit:8 () in
  let cyc = ref 0 in
  Trace.set_clock tr (fun () -> !cyc);
  for i = 1 to 20 do
    cyc := i;
    Trace.emit tr (Trace.Cc_miss { pc = i })
  done;
  Alcotest.(check int) "emitted counts everything" 20 (Trace.emitted tr);
  Alcotest.(check int) "dropped = emitted - capacity" 12 (Trace.dropped tr);
  Alcotest.(check int) "capacity" 8 (Trace.capacity tr);
  let evs = Trace.events tr in
  Alcotest.(check int) "ring holds capacity events" 8 (List.length evs);
  (* chronological, oldest first, and the oldest 12 were overwritten *)
  Alcotest.(check (list int)) "retained tail, in order"
    [ 13; 14; 15; 16; 17; 18; 19; 20 ]
    (List.map fst evs)

let test_ring_no_drop_below_capacity () =
  let tr = Trace.create ~limit:8 () in
  Trace.emit tr (Trace.Cc_miss { pc = 1 });
  Trace.emit tr (Trace.Cc_flush { chunks = 0 });
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped tr);
  Alcotest.(check int) "both retained" 2 (List.length (Trace.events tr))

(* ------------------------------------------------------------------ *)
(* Attribution ledger *)

let test_attribution_conserves () =
  let tr = Trace.create () in
  let cyc = ref 0 in
  Trace.set_clock tr (fun () -> !cyc);
  cyc := 10 (* plain execution *);
  Trace.attribute tr Trace.Wire 5;
  cyc := !cyc + 5;
  cyc := !cyc + 7 (* more execution *);
  cyc := !cyc + 3 (* a charge the clock already includes *);
  Trace.attribute_included tr Trace.Trap 3;
  let s = Trace.summary tr in
  Alcotest.(check int) "wire" 5 s.Trace.s_wire;
  Alcotest.(check int) "trap" 3 s.Trace.s_trap;
  Alcotest.(check int) "execute is the residual" 17 s.Trace.s_execute;
  Alcotest.(check int) "total" !cyc s.Trace.s_total;
  Alcotest.(check bool) "conserved" true (Trace.conserved tr ~total:!cyc);
  (* sync is idempotent: summarising again changes nothing *)
  Trace.sync tr;
  let s' = Trace.summary tr in
  Alcotest.(check int) "idempotent" s.Trace.s_total s'.Trace.s_total

let test_set_clock_rebases () =
  let tr = Trace.create () in
  let cyc = ref 1000 in
  (* the clock starts at 1000: those cycles predate the tracer and must
     not be attributed to anything *)
  Trace.set_clock tr (fun () -> !cyc);
  cyc := 1010;
  Alcotest.(check bool) "only post-attach cycles attributed" true
    (Trace.conserved tr ~total:10)

(* ------------------------------------------------------------------ *)
(* Zero perturbation: trace-on vs trace-off in lockstep *)

let check_trace_equiv name verdict =
  match verdict with
  | Check.Lockstep.Engines_equivalent { steps }
  | Check.Lockstep.Engines_out_of_fuel { steps } ->
    Alcotest.(check bool) (name ^ " stepped something") true (steps > 0)
  | v ->
    Alcotest.failf "%s: expected equivalence, got %a" name
      Check.Lockstep.pp_engine_verdict v

let test_trace_lockstep () =
  check_trace_equiv "sum"
    (Check.Lockstep.trace (fun () -> small_cfg ~tcache_bytes:768 ())
       (prog_sum 200));
  check_trace_equiv "fib/fifo+audit"
    (Check.Lockstep.trace ~audit:true (fun () -> small_cfg ()) (prog_fib 10));
  check_trace_equiv "fib/flush"
    (Check.Lockstep.trace
       (fun () -> small_cfg ~eviction:Softcache.Config.Flush_all ())
       (prog_fib 10))

let test_trace_lockstep_midrun_ops () =
  (* flush and invalidate storms on both sides: the traced run must
     still not deviate by a cycle *)
  let img = prog_fib 12 in
  let hi = 0x1000 + Isa.Image.static_text_bytes img in
  let inv c = Softcache.Controller.invalidate c ~lo:0 ~hi in
  check_trace_equiv "mid-run flush/invalidate"
    (Check.Lockstep.trace ~audit:true
       ~ops:[ inv; Softcache.Controller.flush ]
       (fun () -> small_cfg ())
       img)

let test_trace_lockstep_registry () =
  (* every shipped workload under a thrashing 2 KB tcache; out-of-fuel
     counts as success — every compared step matched *)
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      let img = e.build () in
      check_trace_equiv e.name
        (Check.Lockstep.trace ~fuel:60_000
           (fun () -> small_cfg ~tcache_bytes:2048 ())
           img))
    Workloads.Registry.all

let test_trace_lockstep_detects_perturbation () =
  (* mutation test: a tracer that DID cost a cycle must be caught. The
     op charges one cycle on whichever side carries the tracer — the
     runner must report divergence, proving the comparison is real. *)
  let skew (c : Softcache.Controller.t) =
    if c.tracer <> None then c.cpu.cycles <- c.cpu.cycles + 1
  in
  match
    Check.Lockstep.trace ~fuel:5_000 ~ops:[ skew ]
      (fun () -> small_cfg ())
      (prog_fib 12)
  with
  | Check.Lockstep.Engines_diverged _ -> ()
  | v ->
    Alcotest.failf "expected divergence, got %a"
      Check.Lockstep.pp_engine_verdict v

(* ------------------------------------------------------------------ *)
(* Traced controller runs: events, conservation, audit *)

let test_traced_run_events_and_conservation () =
  let img = (Option.get (Workloads.Registry.find "cjpeg")).build () in
  (* the ethernet model: the local interconnect is free (0 latency,
     0 cycles/byte) and would legitimately attribute no wire cycles *)
  let ctrl, tr, outcome =
    traced_run
      (small_cfg ~tcache_bytes:2048 ~net:(Netmodel.ethernet_10mbps ()) ())
      img
  in
  Alcotest.(check bool) "halts" true (outcome = Machine.Cpu.Halted);
  let evs = Trace.events tr in
  let has p = List.exists (fun (_, ev) -> p ev) evs in
  Alcotest.(check bool) "misses recorded" true
    (has (function Trace.Cc_miss _ -> true | _ -> false));
  Alcotest.(check bool) "translations recorded" true
    (has (function Trace.Cc_translated _ -> true | _ -> false));
  Alcotest.(check bool) "placements recorded" true
    (has (function Trace.Tc_alloc _ -> true | _ -> false));
  Alcotest.(check bool) "frames recorded" true
    (has (function Trace.Net_send _ -> true | _ -> false));
  Alcotest.(check bool) "cache thrashed" true
    (ctrl.stats.evicted_blocks > 0);
  Alcotest.(check bool) "evictions recorded" true
    (has (function Trace.Cc_evict _ -> true | _ -> false));
  (* cycle stamps never go backwards *)
  let rec monotone = function
    | (a, _) :: ((b, _) :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "stamps nondecreasing" true (monotone evs);
  Alcotest.(check bool) "attribution conserves" true
    (Trace.conserved tr ~total:ctrl.cpu.cycles);
  (* the ledger actually split something out of execute *)
  let s = Trace.summary tr in
  Alcotest.(check bool) "translate cycles attributed" true
    (s.Trace.s_translate > 0);
  Alcotest.(check bool) "wire cycles attributed" true (s.Trace.s_wire > 0);
  Alcotest.(check bool) "trap cycles attributed" true (s.Trace.s_trap > 0)

let test_traced_run_under_audit () =
  (* the auditor's trace section re-checks conservation at every
     controller event; a healthy traced run must stay silent *)
  let img = (Option.get (Workloads.Registry.find "cjpeg")).build () in
  let ctrl =
    Softcache.Controller.create (small_cfg ~tcache_bytes:2048 ()) img
  in
  let tr = Trace.create () in
  Softcache.Controller.attach_tracer ctrl tr;
  let audits = Check.Audit.install ctrl in
  let outcome = Softcache.Controller.run ~fuel:3_000_000 ctrl in
  Alcotest.(check bool) "halts" true (outcome = Machine.Cpu.Halted);
  Alcotest.(check bool) "auditor exercised" true (!audits > 100)

let test_traced_run_with_faults () =
  (* a lossy link: transport retries must surface as fault + retry
     events in the ring *)
  let faults = Netmodel.Faults.make ~seed:7 ~drop:0.3 ~corrupt:0.1 () in
  let net = Netmodel.local ~faults () in
  let cfg = small_cfg ~net () in
  let ctrl, tr, _ = traced_run cfg (prog_fib 10) in
  Alcotest.(check bool) "faults actually fired" true
    (Netmodel.drops cfg.net > 0);
  Alcotest.(check bool) "retries happened" true (ctrl.stats.net_retries > 0);
  let has p = List.exists (fun (_, ev) -> p ev) (Trace.events tr) in
  Alcotest.(check bool) "fault events recorded" true
    (has (function Trace.Net_fault _ -> true | _ -> false));
  Alcotest.(check bool) "retry events recorded" true
    (has (function Trace.Cc_retry _ -> true | _ -> false));
  Alcotest.(check bool) "conserves under faults" true
    (Trace.conserved tr ~total:ctrl.cpu.cycles)

let test_dcache_traced_run () =
  let img = (Option.get (Workloads.Registry.find "cjpeg")).build () in
  let cfg = Dcache.Config.make () in
  let tr = Trace.create () in
  let outcome, cpu, stats = Dcache.Sim.run ~tracer:tr cfg img in
  Alcotest.(check bool) "halts" true (outcome = Machine.Cpu.Halted);
  Alcotest.(check bool) "conserves" true
    (Trace.conserved tr ~total:cpu.cycles);
  let s = Trace.summary tr in
  Alcotest.(check int) "overhead labelled as dcache" stats.extra_cycles
    s.Trace.s_dcache;
  if stats.misses > 0 then begin
    let has p = List.exists (fun (_, ev) -> p ev) (Trace.events tr) in
    Alcotest.(check bool) "misses recorded" true
      (has (function Trace.Dc_miss _ -> true | _ -> false))
  end

(* ------------------------------------------------------------------ *)
(* Exporters and schema validation *)

let exported_tracer () =
  let img = (Option.get (Workloads.Registry.find "cjpeg")).build () in
  let ctrl, tr, _ = traced_run (small_cfg ~tcache_bytes:2048 ()) img in
  (ctrl, tr)

let test_jsonl_export_validates () =
  let _, tr = exported_tracer () in
  match Trace.Schema.validate_jsonl (Trace.to_jsonl tr) with
  | Ok n ->
    Alcotest.(check int) "one object per retained event"
      (List.length (Trace.events tr))
      n;
    Alcotest.(check bool) "non-trivial" true (n > 0)
  | Error e -> Alcotest.failf "jsonl export fails its own schema: %s" e

let test_chrome_export_validates () =
  let _, tr = exported_tracer () in
  match Trace.Schema.validate_chrome (Trace.to_chrome tr) with
  | Ok n -> Alcotest.(check bool) "non-trivial" true (n > 0)
  | Error e -> Alcotest.failf "chrome export fails validation: %s" e

let test_schema_rejects_malformed () =
  let bad =
    [
      ("not json at all", "garbage");
      ("{\"type\":\"cc_miss\",\"pc\":1}", "missing cycle");
      ("{\"cycle\":-1,\"type\":\"cc_miss\",\"pc\":1}", "negative cycle");
      ("{\"cycle\":1,\"type\":\"nonsense\"}", "unknown type");
      ("{\"cycle\":1,\"type\":\"cc_miss\"}", "missing required field");
      ( "{\"cycle\":1,\"type\":\"cc_miss\",\"pc\":1,\"bogus\":2}",
        "unexpected field" );
      ( "{\"cycle\":1,\"type\":\"net_fault\",\"fault\":\"gremlins\"}",
        "bad fault value" );
    ]
  in
  List.iter
    (fun (line, why) ->
      match Trace.Schema.validate_jsonl_line line with
      | Ok () -> Alcotest.failf "accepted %s: %s" why line
      | Error _ -> ())
    bad;
  (* and the line number is reported on multi-line input *)
  let text = "{\"cycle\":1,\"type\":\"cc_miss\",\"pc\":1}\ngarbage\n" in
  match Trace.Schema.validate_jsonl text with
  | Error e ->
    Alcotest.(check bool) "names line 2" true
      (String.length e >= 7 && String.sub e 0 7 = "line 2:")
  | Ok _ -> Alcotest.fail "accepted garbage on line 2"

let test_chrome_validator_rejects_backwards_ts () =
  let doc =
    "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"i\",\"s\":\"t\",\"ts\":5,\
     \"pid\":1,\"tid\":1,\"args\":{}},{\"name\":\"b\",\"ph\":\"i\",\
     \"s\":\"t\",\"ts\":4,\"pid\":1,\"tid\":1,\"args\":{}}]}"
  in
  match Trace.Schema.validate_chrome doc with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a time-travelling trace"

let test_export_writes_files () =
  let _, tr = exported_tracer () in
  let dir = Filename.temp_file "trace" "" in
  Sys.remove dir;
  let jsonl = dir ^ ".jsonl" and chrome = dir ^ ".json" in
  Trace.export tr ~format:`Jsonl jsonl;
  Trace.export tr ~format:`Chrome chrome;
  let slurp f = In_channel.with_open_text f In_channel.input_all in
  let j = slurp jsonl and c = slurp chrome in
  Sys.remove jsonl;
  Sys.remove chrome;
  (match Trace.Schema.validate_jsonl j with
  | Ok n -> Alcotest.(check bool) "jsonl file valid" true (n > 0)
  | Error e -> Alcotest.failf "jsonl file: %s" e);
  match Trace.Schema.validate_chrome c with
  | Ok n -> Alcotest.(check bool) "chrome file valid" true (n > 0)
  | Error e -> Alcotest.failf "chrome file: %s" e

let test_json_parser_basics () =
  let ok s v =
    match Trace.Json.parse s with
    | Ok v' -> Alcotest.(check bool) s true (v = v')
    | Error e -> Alcotest.failf "%s: %s" s e
  in
  ok "42" (Trace.Json.Num 42.0);
  ok "\"a\\\"b\"" (Trace.Json.Str "a\"b");
  ok "[1,true,null]"
    (Trace.Json.Arr [ Trace.Json.Num 1.0; Trace.Json.Bool true; Trace.Json.Null ]);
  ok "{\"k\":-1.5e2}" (Trace.Json.Obj [ ("k", Trace.Json.Num (-150.0)) ]);
  List.iter
    (fun s ->
      match Trace.Json.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "parsed %S" s)
    [ "{"; "[1,]"; "{\"k\":}"; "1 2"; "\"unterminated" ]

(* ------------------------------------------------------------------ *)
(* Satellite: Stats eviction ring *)

let test_eviction_ring_bound () =
  let s = Softcache.Stats.create () in
  let cap = Softcache.Stats.eviction_capacity in
  for i = 1 to cap + 904 do
    Softcache.Stats.record_eviction s ~cycle:i ~blocks:1
  done;
  Alcotest.(check int) "retained" cap (Softcache.Stats.eviction_recorded s);
  Alcotest.(check int) "dropped, explicitly" 904
    (Softcache.Stats.eviction_dropped s);
  let series = Softcache.Stats.eviction_series s in
  Alcotest.(check int) "series bounded" cap (List.length series);
  Alcotest.(check int) "oldest retained is the 905th" 905
    (fst (List.hd series));
  Alcotest.(check int) "newest last" (cap + 904)
    (fst (List.nth series (cap - 1)))

let test_eviction_series_flush_heavy () =
  (* a small flush-everything cache on a real workload: every flush now
     lands in the series, and the retained series stays consistent with
     the block counter *)
  let img = (Option.get (Workloads.Registry.find "cjpeg")).build () in
  let ctrl =
    Softcache.Controller.create
      (small_cfg ~tcache_bytes:2048 ~eviction:Softcache.Config.Flush_all ())
      img
  in
  let outcome = Softcache.Controller.run ~fuel:3_000_000 ctrl in
  Alcotest.(check bool) "halts" true (outcome = Machine.Cpu.Halted);
  Alcotest.(check bool) "flushed repeatedly" true (ctrl.stats.flushes > 1);
  let series = Softcache.Stats.eviction_series ctrl.stats in
  Alcotest.(check bool) "bounded" true
    (List.length series <= Softcache.Stats.eviction_capacity);
  let rec monotone = function
    | (a, _) :: ((b, _) :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "chronological" true (monotone series);
  if Softcache.Stats.eviction_dropped ctrl.stats = 0 then
    Alcotest.(check int) "series accounts for every evicted block"
      ctrl.stats.evicted_blocks
      (List.fold_left (fun a (_, n) -> a + n) 0 series)

(* ------------------------------------------------------------------ *)
(* Satellite: shared Bitmath helpers *)

let test_bitmath_is_pow2 () =
  List.iter
    (fun (n, want) ->
      Alcotest.(check bool) (Printf.sprintf "is_pow2 %d" n) want
        (Bitmath.is_pow2 n))
    [ (-4, false); (0, false); (1, true); (2, true); (3, false); (4, true);
      (1023, false); (1024, true); (1025, false) ]

let test_bitmath_floor_log2 () =
  List.iter
    (fun (n, want) ->
      Alcotest.(check int) (Printf.sprintf "floor_log2 %d" n) want
        (Bitmath.floor_log2 n))
    [ (0, 0); (1, 0); (2, 1); (3, 1); (4, 2); (5, 2); (7, 2); (8, 3);
      (1023, 9); (1024, 10); (1025, 10) ]

let test_bitmath_ceil_log2 () =
  List.iter
    (fun (n, want) ->
      Alcotest.(check int) (Printf.sprintf "ceil_log2 %d" n) want
        (Bitmath.ceil_log2 n))
    [ (0, 0); (1, 0); (2, 1); (3, 2); (4, 2); (5, 3); (7, 3); (8, 3); (9, 4);
      (1023, 10); (1024, 10); (1025, 11) ];
  (* and the two agree on exact powers of two *)
  List.iter
    (fun k ->
      Alcotest.(check int)
        (Printf.sprintf "pow2 agreement at 2^%d" k)
        (Bitmath.floor_log2 (1 lsl k))
        (Bitmath.ceil_log2 (1 lsl k)))
    [ 0; 1; 5; 10; 20 ]

(* ------------------------------------------------------------------ *)
(* Satellite: Report.Series fixes *)

let test_series_print_mixed_sign () =
  (* regression: a negative point under a positive maximum produced a
     negative bar length and [String.make] raised — the chart must
     simply render an empty bar *)
  let s =
    Report.Series.create ~title:"mixed" ~xlabel:"x" ~ylabel:"y"
  in
  Report.Series.add s 1.0 5.0;
  Report.Series.add s 2.0 (-3.0);
  Report.Series.add s 3.0 0.0;
  Report.Series.print s;
  (* all-negative series: ymax is clamped at 0 and every bar is empty *)
  let neg =
    Report.Series.create ~title:"neg" ~xlabel:"x" ~ylabel:"y"
  in
  Report.Series.add neg 1.0 (-1.0);
  Report.Series.print neg

(* minimal RFC-4180 reader for the round-trip check *)
let parse_csv s =
  let n = String.length s in
  let rows = ref [] and row = ref [] and buf = Buffer.create 16 in
  let i = ref 0 in
  let flush_field () =
    row := Buffer.contents buf :: !row;
    Buffer.clear buf
  in
  let flush_row () =
    flush_field ();
    rows := List.rev !row :: !rows;
    row := []
  in
  while !i < n do
    if s.[!i] = '"' then begin
      incr i;
      let fin = ref false in
      while not !fin do
        if !i >= n then fin := true
        else if s.[!i] = '"' then
          if !i + 1 < n && s.[!i + 1] = '"' then begin
            Buffer.add_char buf '"';
            i := !i + 2
          end
          else begin
            incr i;
            fin := true
          end
        else begin
          Buffer.add_char buf s.[!i];
          incr i
        end
      done
    end
    else if s.[!i] = ',' then begin
      flush_field ();
      incr i
    end
    else if s.[!i] = '\n' then begin
      flush_row ();
      incr i
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  if Buffer.length buf > 0 || !row <> [] then flush_row ();
  List.rev !rows

let test_csv_escape () =
  List.iter
    (fun (raw, want) ->
      Alcotest.(check string) raw want (Report.csv_escape raw))
    [
      ("plain", "plain");
      ("a,b", "\"a,b\"");
      ("say \"hi\"", "\"say \"\"hi\"\"\"");
      ("line\nbreak", "\"line\nbreak\"");
    ]

let test_series_csv_roundtrip () =
  (* regression: labels with commas, quotes and newlines used to be
     emitted raw and corrupted the header row *)
  let xl = "size, KB" and yl = "miss \"rate\"\n(percent)" in
  let s = Report.Series.create ~title:"t" ~xlabel:xl ~ylabel:yl in
  Report.Series.add s 1.5 2.25;
  Report.Series.add s 3.0 (-0.5);
  match parse_csv (Report.Series.to_csv s) with
  | [ header; r1; r2 ] ->
    Alcotest.(check (list string)) "header round-trips" [ xl; yl ] header;
    Alcotest.(check (list string)) "row 1" [ "1.5"; "2.25" ] r1;
    Alcotest.(check (list string)) "row 2" [ "3"; "-0.5" ] r2
  | rows -> Alcotest.failf "expected 3 rows, got %d" (List.length rows)

let test_table_csv_roundtrip () =
  let t =
    Report.Table.create ~title:"t" ~columns:[ "name"; "value, note" ]
  in
  Report.Table.add_row t [ "a\"b"; "multi\nline" ];
  match parse_csv (Report.Table.to_csv t) with
  | [ header; row ] ->
    Alcotest.(check (list string)) "header" [ "name"; "value, note" ] header;
    Alcotest.(check (list string)) "row" [ "a\"b"; "multi\nline" ] row
  | rows -> Alcotest.failf "expected 2 rows, got %d" (List.length rows)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "trace"
    [
      ( "ring",
        [
          Alcotest.test_case "rejects non-positive limit" `Quick
            test_create_rejects_nonpositive;
          Alcotest.test_case "bound + explicit drop counter" `Quick
            test_ring_bound_and_drop_counter;
          Alcotest.test_case "no drops below capacity" `Quick
            test_ring_no_drop_below_capacity;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "conserves and is idempotent" `Quick
            test_attribution_conserves;
          Alcotest.test_case "set_clock rebases" `Quick test_set_clock_rebases;
        ] );
      ( "zero-perturbation",
        [
          Alcotest.test_case "traced = untraced, cycles included" `Quick
            test_trace_lockstep;
          Alcotest.test_case "mid-run flush/invalidate" `Quick
            test_trace_lockstep_midrun_ops;
          Alcotest.test_case "every registry workload" `Quick
            test_trace_lockstep_registry;
          Alcotest.test_case "detects a perturbing tracer" `Quick
            test_trace_lockstep_detects_perturbation;
        ] );
      ( "traced-runs",
        [
          Alcotest.test_case "events recorded, ledger conserves" `Quick
            test_traced_run_events_and_conservation;
          Alcotest.test_case "clean under the auditor" `Quick
            test_traced_run_under_audit;
          Alcotest.test_case "fault events on a lossy link" `Quick
            test_traced_run_with_faults;
          Alcotest.test_case "dcache sim traced + conserves" `Quick
            test_dcache_traced_run;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "jsonl passes its own schema" `Quick
            test_jsonl_export_validates;
          Alcotest.test_case "chrome passes validation" `Quick
            test_chrome_export_validates;
          Alcotest.test_case "schema rejects malformed lines" `Quick
            test_schema_rejects_malformed;
          Alcotest.test_case "chrome validator rejects backwards ts" `Quick
            test_chrome_validator_rejects_backwards_ts;
          Alcotest.test_case "export writes valid files" `Quick
            test_export_writes_files;
          Alcotest.test_case "json parser basics" `Quick
            test_json_parser_basics;
        ] );
      ( "stats-ring",
        [
          Alcotest.test_case "bounded with explicit overflow" `Quick
            test_eviction_ring_bound;
          Alcotest.test_case "flush-heavy run stays bounded" `Quick
            test_eviction_series_flush_heavy;
        ] );
      ( "bitmath",
        [
          Alcotest.test_case "is_pow2" `Quick test_bitmath_is_pow2;
          Alcotest.test_case "floor_log2 edges" `Quick
            test_bitmath_floor_log2;
          Alcotest.test_case "ceil_log2 edges" `Quick test_bitmath_ceil_log2;
        ] );
      ( "report",
        [
          Alcotest.test_case "negative bars render empty" `Quick
            test_series_print_mixed_sign;
          Alcotest.test_case "csv_escape quoting" `Quick test_csv_escape;
          Alcotest.test_case "series csv round-trips labels" `Quick
            test_series_csv_roundtrip;
          Alcotest.test_case "table csv round-trips cells" `Quick
            test_table_csv_roundtrip;
        ] );
    ]
